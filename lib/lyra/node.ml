type output = { batch : Types.batch; seq : int; output_at : int }

type pending_kind = Validated | External

type pending_entry = {
  p_seq : int;
  kind : pending_kind;
  added_at : int;
  mutable nudged_at : int;  (** last active-repair Nudge for it *)
}

(* Who has ever gossiped an instance as accepted. Kept outside
   [pending_entry] so corroboration accumulates across an entry's
   expiry and re-creation: a claim whose second witness is behind a
   partition must still corroborate once the partition heals, even if
   the pending entry lapsed in between. *)
type claim = {
  cl_peers : bool array;  (** distinct claiming peers, over all time *)
  mutable cl_count : int;
  mutable cl_lapsed : bool;  (** expired uncorroborated at least once *)
}

type reveal_state = {
  senders : bool array;
  mutable count : int;
  mutable vss_shares : Crypto.Vss.decryption_share list;
}

type commit_record = {
  c_batch : Types.batch;
  c_seq : int;
  mutable emitted : bool;
}

(* Per-own-proposal phase milestones, in engine µs; -1 = not reached.
   Keyed by proposal index; removed once the batch is emitted (or
   learned through a log sync, where the pipeline was bypassed). *)
type phase_marks = {
  mutable k_propose : int;
  mutable k_deliver : int;  (** VVB delivered (1, m) locally *)
  mutable k_decide : int;  (** DBFT decided 1 *)
  mutable k_reveal : int;  (** taken committable; Reveal broadcast *)
}

(* Tally of Decided notices for an instance this node has not decided
   itself; adopted once f+1 distinct senders agree on the value. *)
type decided_tally = {
  d_senders : bool array;
  mutable d_ones : int;
  mutable d_zeros : int;
  mutable d_prop : Types.proposal option;
}

type t = {
  config : Config.t;
  id : int;
  net : Types.msg Sim.Network.t;
  engine : Sim.Engine.t;
  clock : Ordering_clock.t;
  predictor : Predictor.t;
  commit : Commit_state.t;
  keys : Crypto.Keys.keypair option;
  dir : Crypto.Keys.directory option;
  vcache : Crypto.Verify_cache.t;  (** amortizes repeat verifications *)
  rng : Crypto.Rng.t;
  misbehavior : Misbehavior.t option;
  on_observe : Types.batch -> unit;
  on_output : output -> unit;
  instances : (Types.iid, Instance.t) Hashtbl.t;
  own_sref : (int, int) Hashtbl.t;  (** proposal index → s_ref *)
  pending : (Types.iid, pending_entry) Hashtbl.t;
  claims : (Types.iid, claim) Hashtbl.t;  (** gossip witnesses per instance *)
  shares_held : (Types.iid, Crypto.Vss.decryption_share) Hashtbl.t;
  reveals : (Types.iid, reveal_state) Hashtbl.t;
  records : (Types.iid, commit_record) Hashtbl.t;
  outbox : Types.iid Queue.t;  (** commit order; emitted when revealed *)
  mutable outputs_rev : output list;
  mutable output_count : int;
  mutable mempool : Types.tx list;  (** reversed *)
  mutable mempool_count : int;
  mutable batch_timer_armed : bool;
  mutable next_index : int;
  mutable inflight : int;
  mutable tx_counter : int;
  mutable started : bool;
  mutable min_pending_dirty : bool;
  mutable min_pending_cache : int;
  mutable gossip_cache : (int * (Types.iid * int) list * string) option;
  peer_committed : int array;  (** emitted-output counts claimed in statuses *)
  last_rx : int array;  (** per-peer time of last received message *)
  mutable probation_until : int;  (** heightened lag sensitivity window *)
  mutable sync_active : bool;  (** output emission paused, pulling the log *)
  mutable sync_req_at : int;
  mutable lag_since : (int * int) option;  (** (since_us, output_count then) *)
  mutable synced_entries : int;
  mutable syncs_started : int;
  decided_votes : (Types.iid, decided_tally) Hashtbl.t;
  inst_created : (Types.iid, int) Hashtbl.t;  (** engine time of first contact *)
  mutable retransmits : int;
  mutable late_accepts : int;
  mutable own_accepted : int;
  mutable own_rejected : int;
  decide_rounds : Metrics.Recorder.t;
  boc_latency : Metrics.Recorder.t;
  phases : Metrics.Phases.t;
  phase_marks : (int, phase_marks) Hashtbl.t;  (** own index → marks *)
  mutable proposals_made : int;
}

(* The latency anatomy of an own batch, as phase spans (ms):
   propose → VVB-deliver → DBFT-decide → take-committable (Reveal
   broadcast) → emit. [boc_decide] = propose → decide is the paper's
   headline BOC latency (3 one-way delays in the good case);
   [accept_wait] is the residual of the L acceptance window plus the
   stable-prefix wait; [e2e] is propose → emit. *)
let phase_labels =
  [ "vvb_deliver"; "dbft_decide"; "boc_decide"; "accept_wait"; "reveal"; "e2e" ]

let id t = t.id

let config t = t.config

let proposals_made t = t.proposals_made

let output_log t = List.rev t.outputs_rev

let accepted_count t = Commit_state.accepted_count t.commit

let committed_seq t = Commit_state.committed t.commit

let pending_count t = Hashtbl.length t.pending

let mempool_size t = t.mempool_count

let late_accepts t = t.late_accepts

(* Oracle-facing: the lowest sequence number this node's validation
   window would currently admit (Alg. 4 line 52 reads seq_obs - L). *)
let predicted_low t = Ordering_clock.peek t.clock - Config.l_us t.config

let accepted_seqs t = Commit_state.accepted_all t.commit

let synced_entries t = t.synced_entries

let syncs_started t = t.syncs_started

let retransmits t = t.retransmits

let decide_rounds t = t.decide_rounds

let boc_latency t = t.boc_latency

let phases t = t.phases

(* Structured trace spans for the Phase category. Phase records are
   per-batch milestones, not per-message, so eagerly building the
   detail variant costs nothing measurable; [Trace.record] itself
   drops it when the category is off. *)
let trace_phase t detail =
  match Sim.Network.trace_sink t.net with
  | Some tr -> Sim.Trace.record tr ~node:t.id Sim.Trace.Phase detail
  | None -> ()

let own_accepted t = t.own_accepted

let own_rejected t = t.own_rejected

let distances_known t = Predictor.known_count t.predictor

let f t = Config.f t.config

let supermajority t = Config.supermajority t.config

let is_byz t m =
  match t.misbehavior with Some m' -> Misbehavior.equal m' m | None -> false

(* ------------------------------------------------------------------ *)
(* Status piggybacking (Alg. 4 lines 74–78).                           *)
(* ------------------------------------------------------------------ *)

let gossip_cap = 64

let min_pending_value t =
  if t.min_pending_dirty then begin
    t.min_pending_dirty <- false;
    t.min_pending_cache <-
      List.fold_left
        (fun acc (_, e) -> if e.kind = Validated then min acc e.p_seq else acc)
        Types.no_pending
        (Sim.Det.sorted_bindings ~cmp:Types.iid_compare t.pending)
  end;
  t.min_pending_cache

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* The gossip payload (accepted set + Merkle root) only changes when
   the accepted set does; rebuild it per version, not per message. *)
let gossip_parts t =
  let version = Commit_state.version t.commit in
  match t.gossip_cache with
  | Some (v, recent, root) when Int.equal v version -> (recent, root, version)
  | _ ->
      let recent = take gossip_cap (Commit_state.accepted_recent t.commit) in
      let root = Commit_state.accepted_root t.commit in
      t.gossip_cache <- Some (version, recent, root);
      (recent, root, version)

(* The accepted-set list is heavy (up to gossip_cap entries); riding it
   on every vote would serialize kilobytes per message on the NIC and
   collapse large clusters under synchronized waves. Scalars piggyback
   everywhere (they are what locked/stable need, Alg. 4 lines 83-86);
   the list itself rides the periodic heartbeat — this is the
   message-size reduction the paper itself calls for in §V-C ("hash
   trees are used in lieu of older prefixes"). *)
let build_status ?(full = false) t : Types.status =
  if is_byz t Misbehavior.Low_status then
    (* Lying low to stall prefixes (§VI-D); neutralized by the
       2f+1-highest rule. *)
    {
      locked_upto = 0;
      min_pending = 0;
      committed = 0;
      accepted_recent = [];
      accepted_root = "";
      version = 0;
    }
  else if full then
    let recent, root, version = gossip_parts t in
    {
      locked_upto = Ordering_clock.peek t.clock - Config.l_us t.config;
      min_pending = min_pending_value t;
      committed = t.output_count;
      accepted_recent = recent;
      accepted_root = root;
      version;
    }
  else
    {
      locked_upto = Ordering_clock.peek t.clock - Config.l_us t.config;
      min_pending = min_pending_value t;
      committed = t.output_count;
      accepted_recent = [];
      accepted_root = "";
      version = 0 (* scalar-only status: gossip not re-sent *);
    }

let broadcast_body t body =
  Sim.Network.broadcast t.net ~src:t.id { status = build_status t; body }

let send_body t ~dst body =
  Sim.Network.send t.net ~src:t.id ~dst { status = build_status t; body }

(* ------------------------------------------------------------------ *)
(* Reveal and output (commit-reveal, §V-C lines 89–95).                *)
(* ------------------------------------------------------------------ *)

let reveal_state t iid =
  match Hashtbl.find_opt t.reveals iid with
  | Some r -> r
  | None ->
      let r =
        { senders = Array.make t.config.n false; count = 0; vss_shares = [] }
      in
      Hashtbl.replace t.reveals iid r;
      r

let reveal_complete t iid =
  match Hashtbl.find_opt t.reveals iid with
  | None -> false
  | Some r -> r.count >= supermajority t

(* Emit revealed batches in commit order only: the head of the outbox
   must be decryptable before anything behind it is output. While an
   output-log sync is in flight, emission pauses entirely: entries
   committed elsewhere during our outage must surface before anything
   we commit locally, or the prefix diverges. *)
let rec drain_outbox t =
  if t.sync_active then ()
  else
  match Queue.peek_opt t.outbox with
  | None -> ()
  | Some iid -> (
      match Hashtbl.find_opt t.records iid with
      | None -> ()
      | Some rec_ when rec_.emitted ->
          ignore (Queue.pop t.outbox : Types.iid);
          drain_outbox t
      | Some rec_ ->
          if reveal_complete t iid then begin
            let decrypted =
              match rec_.c_batch.obf with
              | Types.Clear | Types.Structural -> true
              | Types.Vss cipher -> (
                  let r = reveal_state t iid in
                  match Crypto.Vss.decrypt cipher r.vss_shares with
                  | Some _payload -> true
                  | None -> false)
            in
            if decrypted then begin
              rec_.emitted <- true;
              ignore (Queue.pop t.outbox : Types.iid);
              let out =
                {
                  batch = rec_.c_batch;
                  seq = rec_.c_seq;
                  output_at = Sim.Engine.now t.engine;
                }
              in
              t.outputs_rev <- out :: t.outputs_rev;
              t.output_count <- t.output_count + 1;
              (if Int.equal iid.Types.proposer t.id then
                 match Hashtbl.find_opt t.phase_marks iid.Types.index with
                 | Some m ->
                     let now = out.output_at in
                     if m.k_reveal >= 0 then
                       Metrics.Phases.record_span_us t.phases "reveal"
                         ~from_us:m.k_reveal ~until_us:now;
                     Metrics.Phases.record_span_us t.phases "e2e"
                       ~from_us:m.k_propose ~until_us:now;
                     trace_phase t
                       (Sim.Trace.Span { span = "e2e"; from_us = m.k_propose });
                     Hashtbl.remove t.phase_marks iid.Types.index
                 | None -> ());
              t.on_output out;
              drain_outbox t
            end
          end)

let on_reveal t ~src iid share =
  let r = reveal_state t iid in
  if not r.senders.(src) then begin
    let share_ok =
      match share with
      | None -> not t.config.real_crypto
      | Some s -> (
          Int.equal s.Crypto.Vss.holder src
          &&
          (* Check against the cipher's commitments when we have it. *)
          match Hashtbl.find_opt t.records iid with
          | Some { c_batch = { obf = Types.Vss cipher; _ }; _ } ->
              Crypto.Vss.verify_share cipher s
          | _ -> true)
    in
    if share_ok then begin
      r.senders.(src) <- true;
      r.count <- r.count + 1;
      (match share with
      | Some s -> r.vss_shares <- s :: r.vss_shares
      | None -> ());
      drain_outbox t
    end
  end

(* ------------------------------------------------------------------ *)
(* Commit (Alg. 4: try-commit).                                        *)
(* ------------------------------------------------------------------ *)

let pending_blocks_commit t boundary =
  let now = Sim.Engine.now t.engine in
  let expiry = 2 * Config.l_us t.config in
  let blocking = ref false in
  let expired = ref [] in
  let nudge_if_due iid e =
    if
      now - e.added_at > Config.l_us t.config
      && now - e.nudged_at > t.config.retransmit_interval_us
      && not (Sim.Network.is_crashed t.net t.id)
    then begin
      e.nudged_at <- now;
      t.retransmits <- t.retransmits + 1;
      broadcast_body t (Types.Nudge { iid })
    end
  in
  List.iter
    (fun (iid, e) ->
      if e.p_seq <= boundary then
        match e.kind with
        | Validated -> blocking := true
        | External ->
            (* A gossiped instance we never decided locally. When the
               claim is corroborated (f+1 distinct witnesses over all
               time include a correct node; a local instance means we
               saw real VVB traffic) the entry is genuinely accepted
               somewhere and skipping it would fork the log — e.g. we
               were crashed or partitioned through its whole exchange.
               Those block for as long as it takes and are actively
               repaired with a Nudge pull (peers answer Decided; f+1
               notices settle it). Only uncorroborated claims — a
               Byzantine gossiper inventing entries to stall the
               prefix — expire, after 2L; they are nudged too, since
               an honest answer both corroborates (the notice creates
               a local instance) and progresses the repair. *)
            let corroborated =
              Hashtbl.mem t.instances iid
              || (match Hashtbl.find_opt t.claims iid with
                 | Some c -> c.cl_count > Config.f t.config
                 | None -> false)
            in
            if corroborated then begin
              blocking := true;
              nudge_if_due iid e
            end
            else if now - e.added_at > expiry then begin
              (match Hashtbl.find_opt t.claims iid with
              | Some c -> c.cl_lapsed <- true
              | None -> ());
              expired := iid :: !expired
            end
            else begin
              blocking := true;
              nudge_if_due iid e
            end)
    (Sim.Det.sorted_bindings ~cmp:Types.iid_compare t.pending);
  if !expired <> [] then t.min_pending_dirty <- true;
  List.iter (Hashtbl.remove t.pending) !expired;
  !blocking

let try_commit t =
  let boundary = Commit_state.committed t.commit in
  if boundary > 0 && not (pending_blocks_commit t boundary) then begin
    let taken = Commit_state.take_committable t.commit in
    List.iter
      (fun (iid, seq) ->
        match Hashtbl.find_opt t.instances iid with
        | None -> ()
        (* A record can already exist when the entry arrived through an
           output-log sync; it was emitted there — don't re-queue it. *)
        | Some _ when Hashtbl.mem t.records iid -> ()
        | Some inst -> (
            match Instance.proposal inst with
            | None -> ()
            | Some proposal ->
                Hashtbl.replace t.records iid
                  { c_batch = proposal.Types.batch; c_seq = seq; emitted = false };
                Queue.push iid t.outbox;
                (if Int.equal iid.Types.proposer t.id then
                   match Hashtbl.find_opt t.phase_marks iid.Types.index with
                   | Some m when m.k_decide >= 0 && m.k_reveal < 0 ->
                       let now = Sim.Engine.now t.engine in
                       m.k_reveal <- now;
                       Metrics.Phases.record_span_us t.phases "accept_wait"
                         ~from_us:m.k_decide ~until_us:now
                   | _ -> ());
                (* Broadcast our decryption share (line 95). *)
                let share =
                  if t.config.real_crypto then
                    Hashtbl.find_opt t.shares_held iid
                  else None
                in
                broadcast_body t (Types.Reveal { iid; share })))
      taken;
    if taken <> [] then drain_outbox t
  end

(* ------------------------------------------------------------------ *)
(* Validation function (Alg. 4 line 62, Eq. 1).                        *)
(* ------------------------------------------------------------------ *)

let validate t (proposal : Types.proposal) ~seq_obs =
  let cfg = t.config in
  let n = cfg.n and fv = f t in
  let ok =
    Int.equal (Array.length proposal.st) n
    && Array.length proposal.batch.txs <= 4 * cfg.batch_size
    &&
    match proposal.st.(t.id) with
    | None -> false
    | Some prediction -> (
        let perr = abs (seq_obs - prediction) in
        if perr > cfg.lambda_us then false
        else
        match Types.requested_seq ~n ~f:fv proposal.st with
        | None -> false
        | Some s ->
            (* Acceptance window: not locally locked, not too far in
               the future (§VI-D). [skip_window_check] bypasses the
               guard — deliberately unsound, explorer self-test only. *)
            cfg.skip_window_check
            || (s > seq_obs - Config.l_us cfg
               && s < seq_obs + cfg.future_bound_us))
  in
  (* A slow INIT can arrive after the instance already decided from the
     other processes' messages; booking it as pending then would leave a
     stale min-pending that stalls everyone's stable prefix. *)
  let already_decided =
    match Hashtbl.find_opt t.instances proposal.batch.iid with
    | Some inst -> Instance.decided inst <> None
    | None -> false
  in
  if ok && not already_decided then begin
    let s =
      match Types.requested_seq ~n ~f:fv proposal.st with
      | Some s -> s
      | None -> assert false
    in
    (match Hashtbl.find_opt t.pending proposal.batch.iid with
    | Some { kind = Validated; _ } -> ()
    | Some _ | None ->
        t.min_pending_dirty <- true;
        Hashtbl.replace t.pending proposal.batch.iid
          {
            p_seq = s;
            kind = Validated;
            added_at = Sim.Engine.now t.engine;
            nudged_at = 0;
          })
  end;
  ok

(* ------------------------------------------------------------------ *)
(* Instance management.                                                *)
(* ------------------------------------------------------------------ *)

(* Forward declaration: re-proposal of rejected client batches needs
   maybe_propose, defined later. Assigned exactly once at module init
   and never mutated after; it carries no per-run state, so sharing it
   across node instances is sound. lint: allow D102 *)
let reproposal_hook : (t -> Types.tx list -> unit) ref =
  ref (fun _ _ -> ())

let on_decide t iid ~value ~round proposal =
  (match Hashtbl.find_opt t.pending iid with
  | Some _ ->
      Hashtbl.remove t.pending iid;
      t.min_pending_dirty <- true
  | None -> ());
  (* The local decision settles the instance for good; gossip witness
     bookkeeping for it is no longer needed. *)
  Hashtbl.remove t.claims iid;
  t.decide_rounds |> fun r -> Metrics.Recorder.record r (float_of_int round);
  (if Int.equal iid.Types.proposer t.id then begin
     t.inflight <- max 0 (t.inflight - 1);
     if value = 1 then t.own_accepted <- t.own_accepted + 1
     else begin
       t.own_rejected <- t.own_rejected + 1;
       (* A rejected batch carries live client transactions: requeue
          them for a fresh proposal with updated predictions
          (SMR-Liveness, Lemma 8 — processes continuously re-input). *)
       match Hashtbl.find_opt t.instances iid with
       | Some inst -> (
           match Instance.proposal inst with
           | Some p ->
               let live =
                 Array.to_list p.Types.batch.Types.txs
                 |> List.filter (fun (tx : Types.tx) ->
                        String.length tx.tx_id > 0 && tx.tx_id.[0] = 'c')
               in
               if live <> [] then !reproposal_hook t live
           | None -> ())
       | None -> ()
     end;
     (match Hashtbl.find_opt t.own_sref iid.Types.index with
     | Some s_ref ->
         Metrics.Recorder.record t.boc_latency
           (float_of_int (Ordering_clock.peek t.clock - s_ref))
     | None -> ());
     match Hashtbl.find_opt t.phase_marks iid.Types.index with
     | Some m when value = 1 && m.k_decide < 0 ->
         let now = Sim.Engine.now t.engine in
         m.k_decide <- now;
         if m.k_deliver >= 0 then
           Metrics.Phases.record_span_us t.phases "dbft_decide"
             ~from_us:m.k_deliver ~until_us:now;
         Metrics.Phases.record_span_us t.phases "boc_decide"
           ~from_us:m.k_propose ~until_us:now;
         trace_phase t
           (Sim.Trace.Span { span = "boc_decide"; from_us = m.k_propose })
     | Some _ when value = 0 ->
         (* Rejected: the pipeline ends here; its marks never complete. *)
         Hashtbl.remove t.phase_marks iid.Types.index
     | _ -> ()
   end);
  (if value = 1 then
     match proposal with
     | Some p -> (
         match
           Types.requested_seq ~n:t.config.n ~f:(f t) p.Types.st
         with
         | Some seq ->
             (* A decision for an entry already learned through the
                committed-log sync is a replay, not a late accept: the
                entry sits at its canonical position already. A late
                decision is only dangerous once the local log has
                *emitted* past its seq — the commit *boundary* may run
                ahead of emission while a blocked pending entry (being
                repaired by the Nudge pull) holds takes back, and that
                is the repair working, not a violation. *)
             if not (Commit_state.is_accepted t.commit iid) then begin
               if seq <= Commit_state.taken_upto t.commit then
                 t.late_accepts <- t.late_accepts + 1;
               Commit_state.add_accepted t.commit iid ~seq
             end
         | None -> ())
     | None -> ());
  try_commit t

let make_env t iid : Instance.env =
  let cfg = t.config in
  {
    self = t.id;
    n = cfg.n;
    f = f t;
    delta_us = cfg.delta_us;
    max_rounds = cfg.max_rounds;
    clock_read = (fun () -> Ordering_clock.read t.clock);
    validate = (fun proposal ~seq_obs -> validate t proposal ~seq_obs);
    verify_init =
      (fun proposal sigma ->
        if not cfg.real_crypto then true
        else
          match (sigma, t.dir) with
          | Some sg, Some dir ->
              Crypto.Verify_cache.verify_by t.vcache ~dir
                ~signer:iid.Types.proposer
                (Types.proposal_digest proposal)
                sg
          | _ -> false);
    verify_vote_share =
      (fun ~digest ~src share ->
        if not cfg.real_crypto then true
        else
          match (share, t.dir) with
          | Some sh, Some dir ->
              Int.equal sh.Crypto.Threshold.signer src
              && Crypto.Verify_cache.share_verify t.vcache ~dir digest sh
          | _ -> false);
    make_vote_share =
      (fun ~digest ->
        if not cfg.real_crypto then None
        else
          match t.keys with
          | Some kp -> Some (Crypto.Threshold.share_sign kp digest)
          | None -> None);
    make_deliver_proof =
      (fun ~digest:_ shares ->
        if not cfg.real_crypto then None
        else Crypto.Threshold.combine ~threshold:(supermajority t) shares);
    check_deliver =
      (fun proposal proof ->
        if not cfg.real_crypto then true
        else
          match (proof, t.dir) with
          | Some pf, Some dir ->
              Crypto.Verify_cache.verify_combined t.vcache ~dir
                ~threshold:(supermajority t)
                (Types.proposal_digest proposal)
                pf
          | _ -> false);
    broadcast =
      (fun body ->
        match (t.misbehavior, body) with
        | Some (Misbehavior.Stale_votes { delay_us }), Types.Vote _ ->
            ignore
              (Sim.Engine.schedule t.engine ~delay:delay_us (fun () ->
                   broadcast_body t body)
                : Sim.Engine.timer)
        | _, body -> broadcast_body t body);
    schedule =
      (fun ~delay_us fn ->
        ignore (Sim.Engine.schedule t.engine ~delay:delay_us fn : Sim.Engine.timer));
    observe_vote =
      (fun ~src ~seq_obs ->
        if Int.equal iid.Types.proposer t.id then
          match Hashtbl.find_opt t.own_sref iid.Types.index with
          | Some s_ref -> Predictor.observe t.predictor ~peer:src ~s_ref ~seq_obs
          | None -> ());
    on_vvb_deliver =
      (fun () ->
        if Int.equal iid.Types.proposer t.id then
          match Hashtbl.find_opt t.phase_marks iid.Types.index with
          | Some m when m.k_deliver < 0 ->
              let now = Sim.Engine.now t.engine in
              m.k_deliver <- now;
              Metrics.Phases.record_span_us t.phases "vvb_deliver"
                ~from_us:m.k_propose ~until_us:now
          | _ -> ());
    on_decide =
      (fun ~value ~round proposal -> on_decide t iid ~value ~round proposal);
  }

let instance_of t iid =
  match Hashtbl.find_opt t.instances iid with
  | Some inst -> inst
  | None ->
      let inst = Instance.create (make_env t iid) iid in
      Hashtbl.replace t.instances iid inst;
      Hashtbl.replace t.inst_created iid (Sim.Engine.now t.engine);
      inst

(* ------------------------------------------------------------------ *)
(* Proposing (ordered-propose, Alg. 2).                                *)
(* ------------------------------------------------------------------ *)

let fresh_txs t k =
  List.init k (fun _ ->
      t.tx_counter <- t.tx_counter + 1;
      {
        Types.tx_id = Printf.sprintf "w%d-%d" t.id t.tx_counter;
        payload = String.make t.config.tx_size '\x00';
        submitted_at = Sim.Engine.now t.engine;
        origin = t.id;
      })

let batch_payload txs =
  String.concat "" (Array.to_list (Array.map (fun tx -> tx.Types.payload) txs))

let propose_batch t txs =
  let cfg = t.config in
  let index = t.next_index in
  t.next_index <- index + 1;
  t.proposals_made <- t.proposals_made + 1;
  let iid = { Types.proposer = t.id; index } in
  (* The reference sequence number is the moment the INIT actually
     leaves this node: under load the egress NIC has a backlog, and
     timestamping at enqueue time would shift every receiver's
     perceived time by that backlog, breaking the λ check. *)
  let s_ref =
    Ordering_clock.read t.clock
    + Sim.Cpu.backlog_us (Sim.Network.nic t.net t.id)
  in
  Hashtbl.replace t.own_sref index s_ref;
  Hashtbl.replace t.phase_marks index
    {
      k_propose = Sim.Engine.now t.engine;
      k_deliver = -1;
      k_decide = -1;
      k_reveal = -1;
    };
  trace_phase t (Sim.Trace.Mark { mark = "propose"; proposer = t.id; index });
  let st = Predictor.predict t.predictor ~s_ref in
  let st =
    match t.misbehavior with
    | Some (Misbehavior.Future_seq { offset_us }) ->
        Array.map (Option.map (fun s -> s + offset_us)) st
    | _ -> st
  in
  t.inflight <- t.inflight + 1;
  let txs = Array.of_list txs in
  let make_batch txs obf = { Types.iid; txs; obf; created_at = s_ref } in
  let sign proposal =
    if cfg.real_crypto then
      Option.map
        (fun kp -> Crypto.Schnorr.sign kp (Types.proposal_digest proposal))
        t.keys
    else None
  in
  if is_byz t Misbehavior.Equivocate then begin
    (* Two proposals under one instance id, split across the network.
       VVB-Unicity prevents both from being delivered with 1. *)
    let variant tag =
      let txs' =
        Array.map
          (fun tx -> { tx with Types.tx_id = tx.Types.tx_id ^ tag })
          txs
      in
      let p = { Types.batch = make_batch txs' Types.Structural; st } in
      (p, sign p)
    in
    let a, sig_a = variant ".a" and b, sig_b = variant ".b" in
    for dst = 0 to cfg.n - 1 do
      let proposal, sigma = if dst < cfg.n / 2 then (a, sig_a) else (b, sig_b) in
      send_body t ~dst (Types.Init { proposal; share = None; sigma })
    done
  end
  else if cfg.real_crypto then begin
    let cipher, dshares =
      Crypto.Vss.encrypt ~scheme:cfg.vss_scheme t.rng ~n:cfg.n
        ~threshold:(supermajority t) (batch_payload txs)
    in
    let proposal = { Types.batch = make_batch txs (Types.Vss cipher); st } in
    let sigma = sign proposal in
    for dst = 0 to cfg.n - 1 do
      send_body t ~dst
        (Types.Init { proposal; share = Some dshares.(dst); sigma })
    done
  end
  else begin
    let proposal = { Types.batch = make_batch txs Types.Structural; st } in
    broadcast_body t (Types.Init { proposal; share = None; sigma = None })
  end

let rec maybe_propose t =
  if
    t.started
    && (not (Sim.Network.is_crashed t.net t.id))
    && t.inflight < t.config.max_inflight
  then begin
    if t.mempool_count >= t.config.batch_size then begin
      let txs = List.rev t.mempool in
      let rec split k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (k - 1) (x :: acc) tl
      in
      let batch, rest = split t.config.batch_size [] txs in
      t.mempool <- List.rev rest;
      t.mempool_count <- t.mempool_count - List.length batch;
      propose_batch t batch;
      maybe_propose t
    end
    else if t.mempool_count > 0 && not t.batch_timer_armed then begin
      t.batch_timer_armed <- true;
      ignore
        (Sim.Engine.schedule t.engine ~delay:t.config.batch_timeout_us
           (fun () ->
             t.batch_timer_armed <- false;
             (* A crashed node holds its transactions; the recovery
                hook re-enters maybe_propose. *)
             if
               t.mempool_count > 0
               && t.inflight < t.config.max_inflight
               && not (Sim.Network.is_crashed t.net t.id)
             then begin
               let txs = List.rev t.mempool in
               t.mempool <- [];
               t.mempool_count <- 0;
               propose_batch t txs
             end;
             maybe_propose t)
          : Sim.Engine.timer)
    end
  end

let () =
  reproposal_hook :=
    fun t txs ->
      t.mempool <- List.rev_append txs t.mempool;
      t.mempool_count <- t.mempool_count + List.length txs;
      maybe_propose t

let submit t ~payload =
  t.tx_counter <- t.tx_counter + 1;
  let tx =
    {
      Types.tx_id = Printf.sprintf "c%d-%d" t.id t.tx_counter;
      payload;
      submitted_at = Sim.Engine.now t.engine;
      origin = t.id;
    }
  in
  t.mempool <- tx :: t.mempool;
  t.mempool_count <- t.mempool_count + 1;
  maybe_propose t;
  tx.Types.tx_id

(* ------------------------------------------------------------------ *)
(* Crash recovery: output-log sync.                                    *)
(*                                                                     *)
(* A node that was crashed (or starved by a lossy link) misses both    *)
(* the BOC traffic of instances decided in its absence and the Reveal  *)
(* shares of entries committed then — neither is retransmitted by the  *)
(* steady-state protocol, because statuses only gossip *pending*       *)
(* entries. The repair is a pull: when the (f+1)-th highest emitted-   *)
(* output count claimed by peers stays ahead of ours with no local     *)
(* progress for sync_patience_us, we pause emission and pull the       *)
(* missing slice of the committed log from a peer that has emitted it. *)
(* Synced entries bypass the reveal quorum: the serving (correct) peer *)
(* only serves what it has itself emitted, so the quorum already       *)
(* formed cluster-wide while we were away.                             *)
(* ------------------------------------------------------------------ *)

(* At least one of the f+1 highest claims is from a correct process,
   so the target prefix really exists and can be served. *)
let sync_target t =
  let sorted = Array.copy t.peer_committed in
  sorted.(t.id) <- t.output_count;
  Array.sort (fun a b -> Int.compare b a) sorted;
  sorted.(f t)

let send_sync_req t =
  t.sync_req_at <- Sim.Engine.now t.engine;
  let target = sync_target t in
  (* Deterministic choice: lowest-id peer claiming the target prefix. *)
  let peer = ref (-1) in
  Array.iteri
    (fun i c ->
      if !peer < 0 && (not (Int.equal i t.id)) && c >= target then peer := i)
    t.peer_committed;
  if !peer >= 0 then
    send_body t ~dst:!peer (Types.Sync_req { from_count = t.output_count })

(* Heartbeat-driven lag watchdog. Transient lag is normal (peers emit a
   few hundred µs apart), so sync only starts when the lag persists
   with zero local progress for the whole patience window — a healthy
   node always emits again long before that. *)
let sync_tick t =
  if not (Sim.Network.is_crashed t.net t.id) then begin
    let now = Sim.Engine.now t.engine in
    let target = sync_target t in
    if target <= t.output_count then begin
      t.lag_since <- None;
      if t.sync_active then begin
        t.sync_active <- false;
        drain_outbox t
      end
    end
    else if t.sync_active then begin
      (* Pull in flight; re-request if the response itself was lost. *)
      if now - t.sync_req_at > 2 * t.config.delta_us then send_sync_req t
    end
    else
      match t.lag_since with
      | Some (since, count) when Int.equal count t.output_count ->
          if now - since > t.config.sync_patience_us then begin
            t.sync_active <- true;
            t.syncs_started <- t.syncs_started + 1;
            send_sync_req t
          end
      | _ -> t.lag_since <- Some (now, t.output_count)
  end

let on_sync_req t ~src ~from_count =
  if from_count >= 0 && from_count < t.output_count then begin
    let upto = min t.output_count (from_count + t.config.sync_batch) in
    (* outputs_rev is newest first; walk down collecting the slice
       [from_count, upto) in ascending order. *)
    let rec collect acc idx = function
      | [] -> acc
      | (o : output) :: rest ->
          if idx < from_count then acc
          else
            let acc = if idx < upto then (o.batch, o.seq) :: acc else acc in
            collect acc (idx - 1) rest
    in
    let entries = collect [] (t.output_count - 1) t.outputs_rev in
    send_body t ~dst:src
      (Types.Sync_resp { from_count; upto = t.output_count; entries })
  end

let on_sync_resp t ~src:_ ~from_count ~upto entries =
  (* Apply only an exactly-contiguous slice; anything else is stale
     (an earlier duplicate request) and a fresh pull will follow. *)
  if t.sync_active && Int.equal from_count t.output_count then begin
    let ok = ref true in
    List.iter
      (fun ((batch : Types.batch), seq) ->
        if !ok then begin
          let iid = batch.Types.iid in
          match Hashtbl.find_opt t.records iid with
          | Some r when r.emitted ->
              (* Responder's log diverges from ours — Byzantine server.
                 Abort; the next tick re-pulls from another peer. *)
              ok := false
          | existing ->
              Commit_state.note_committed t.commit iid ~seq;
              Hashtbl.remove t.claims iid;
              (if Hashtbl.mem t.pending iid then begin
                 Hashtbl.remove t.pending iid;
                 t.min_pending_dirty <- true
               end);
              (match existing with
              | Some r -> r.emitted <- true
              | None ->
                  Hashtbl.replace t.records iid
                    { c_batch = batch; c_seq = seq; emitted = true });
              (* Settle the local instance if it is still undecided, so
                 the retransmission sweep stops nudging for it and an
                 own proposal releases its inflight slot. *)
              (match Hashtbl.find_opt t.instances iid with
              | Some inst when Instance.decided inst = None ->
                  Instance.force_decide inst ~value:1 (Instance.proposal inst)
              | _ -> ());
              t.synced_entries <- t.synced_entries + 1;
              (* An own batch emitted through the sync bypassed the
                 reveal pipeline; its phase marks can never complete. *)
              if Int.equal iid.Types.proposer t.id then
                Hashtbl.remove t.phase_marks iid.Types.index;
              let out =
                { batch; seq; output_at = Sim.Engine.now t.engine }
              in
              t.outputs_rev <- out :: t.outputs_rev;
              t.output_count <- t.output_count + 1;
              t.on_output out
        end)
      entries;
    if t.output_count >= upto then begin
      (* Responder exhausted; if another peer is still ahead the next
         heartbeat tick restarts the pull. *)
      t.sync_active <- false;
      try_commit t;
      drain_outbox t;
      maybe_propose t
    end
    else if !ok then send_sync_req t
  end

(* ------------------------------------------------------------------ *)
(* Lossy-link repair: nudges and decision notices.                     *)
(* ------------------------------------------------------------------ *)

let on_nudge t ~src iid =
  match Hashtbl.find_opt t.instances iid with
  | None -> ()
  | Some inst -> (
      match Instance.decided inst with
      | Some value ->
          let proposal = if value = 1 then Instance.proposal inst else None in
          send_body t ~dst:src (Types.Decided { iid; value; proposal })
      | None ->
          (* Both stuck: re-offer our contribution so quorums re-form. *)
          Instance.poke inst)

let on_decided t ~src iid ~value proposal =
  if value = 0 || value = 1 then begin
    let inst = instance_of t iid in
    if Instance.decided inst = None then begin
      let tally =
        match Hashtbl.find_opt t.decided_votes iid with
        | Some d -> d
        | None ->
            let d =
              {
                d_senders = Array.make t.config.n false;
                d_ones = 0;
                d_zeros = 0;
                d_prop = None;
              }
            in
            Hashtbl.replace t.decided_votes iid d;
            d
      in
      if not tally.d_senders.(src) then begin
        tally.d_senders.(src) <- true;
        if value = 1 then begin
          tally.d_ones <- tally.d_ones + 1;
          if tally.d_prop = None then tally.d_prop <- proposal
        end
        else tally.d_zeros <- tally.d_zeros + 1;
        (* f+1 matching notices contain at least one correct sender. *)
        let bar = f t + 1 in
        if tally.d_ones >= bar then begin
          Hashtbl.remove t.decided_votes iid;
          let p =
            match tally.d_prop with
            | Some _ as p -> p
            | None -> Instance.proposal inst
          in
          Instance.force_decide inst ~value:1 p
        end
        else if tally.d_zeros >= bar then begin
          Hashtbl.remove t.decided_votes iid;
          Instance.force_decide inst ~value:0 None
        end
      end
    end
  end

(* Periodic sweep: any instance still undecided past the patience gets
   its state re-broadcast plus a Nudge pulling peers' state. On healthy
   runs every instance decides well inside the patience, so the sweep
   sends nothing and the goldens are untouched. *)
let rec retransmit_loop t =
  (if not (Sim.Network.is_crashed t.net t.id) then begin
     let now = Sim.Engine.now t.engine in
     List.iter
       (fun (iid, inst) ->
         if Instance.decided inst = None && not (Instance.halted inst) then
           match Hashtbl.find_opt t.inst_created iid with
           | Some at when now - at > t.config.retransmit_after_us ->
               t.retransmits <- t.retransmits + 1;
               Instance.poke inst;
               broadcast_body t (Types.Nudge { iid })
           | _ -> ())
       (Sim.Det.sorted_bindings ~cmp:Types.iid_compare t.instances)
   end);
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.config.retransmit_interval_us
       (fun () -> retransmit_loop t)
      : Sim.Engine.timer)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)
(* ------------------------------------------------------------------ *)

let absorb_status t ~src (status : Types.status) =
  Commit_state.peer_status t.commit ~peer:src ~locked:status.locked_upto
    ~min_pending:status.min_pending;
  (* Monotone: reordered deliveries must not shrink a peer's claim. *)
  if status.committed > t.peer_committed.(src) then
    t.peer_committed.(src) <- status.committed;
  (* Gossip is processed on every status, not only when the sender's
     version bumps: a peer rejoining from a partition re-announces an
     unchanged accepted set, and that re-announcement may be exactly
     the corroborating witness (or re-creation trigger) for an entry
     whose pending record lapsed in the meantime. Commits are still
     attempted from decisions and the heartbeat tick rather than on
     every message. *)
  List.iter
    (fun (iid, seq) ->
      if not (Commit_state.is_accepted t.commit iid) then begin
        (* Corroboration: record every distinct peer that ever claimed
           this entry accepted; f+1 of them include a correct one. *)
        let cl =
          match Hashtbl.find_opt t.claims iid with
          | Some c -> c
          | None ->
              let c =
                {
                  cl_peers = Array.make t.config.n false;
                  cl_count = 0;
                  cl_lapsed = false;
                }
              in
              Hashtbl.replace t.claims iid c;
              c
        in
        if not cl.cl_peers.(src) then begin
          cl.cl_peers.(src) <- true;
          cl.cl_count <- cl.cl_count + 1
        end;
        if not (Hashtbl.mem t.pending iid) then begin
          let decided =
            match Hashtbl.find_opt t.instances iid with
            | Some i -> Instance.decided i <> None
            | None -> false
          in
          (* A claim that already expired once is only re-admitted when
             corroborated — a lone Byzantine gossiper can stall the
             prefix for at most one 2L window per invented entry. *)
          if
            (not decided)
            && ((not cl.cl_lapsed) || cl.cl_count > Config.f t.config)
          then begin
            t.min_pending_dirty <- true;
            Hashtbl.replace t.pending iid
              {
                p_seq = seq;
                kind = External;
                added_at = Sim.Engine.now t.engine;
                nudged_at = 0;
              }
          end
        end
      end)
    status.accepted_recent

(* Isolation probation. A node cut off from a quorum (crash, minority
   partition) may hold a stale view of the committed log: entries that
   completed in its absence were never gossiped to it (statuses only
   carry *pending* entries). Once reconnected, fresh statuses can
   advance its commit boundary past those missed entries and it would
   emit the log out of order — and the patience-based watchdog is too
   slow to stop that. So: whenever fewer than a quorum of peers have
   been heard within isolation_gap_us, open a probation window in which
   any observed lag starts the sync pull immediately. This always wins
   the race with a bad emission, because advancing the boundary needs
   fresh statuses from 2f+1 peers while spotting the lag needs only
   f+1 — and both ride the same messages. Outages shorter than the gap
   cannot hide a full commit (the commit pipeline alone takes longer),
   so the window misses nothing. On healthy runs every peer heartbeats
   every 25 ms and the quorum check never fails. *)
let isolation_check t ~src ~now =
  t.last_rx.(src) <- now;
  let heard = ref 0 in
  Array.iteri
    (fun i at ->
      if Int.equal i t.id || now - at <= t.config.isolation_gap_us then
        incr heard)
    t.last_rx;
  if !heard < Config.quorum t.config then
    t.probation_until <- now + t.config.isolation_gap_us

let on_message t ~src (msg : Types.msg) =
  let now = Sim.Engine.now t.engine in
  isolation_check t ~src ~now;
  absorb_status t ~src msg.status;
  (if (not t.sync_active) && now <= t.probation_until
      && sync_target t > t.output_count then begin
     t.sync_active <- true;
     t.syncs_started <- t.syncs_started + 1;
     send_sync_req t
   end);
  match msg.body with
  | Types.Init { proposal; share; sigma } ->
      (match share with
      | Some s -> Hashtbl.replace t.shares_held proposal.Types.batch.Types.iid s
      | None -> ());
      t.on_observe proposal.Types.batch;
      Instance.on_init
        (instance_of t proposal.Types.batch.Types.iid)
        ~src proposal sigma
  | Types.Vote { iid; vote } -> Instance.on_vote (instance_of t iid) ~src vote
  | Types.Deliver { iid; proposal; proof } ->
      Instance.on_deliver (instance_of t iid) ~src proposal proof
  | Types.Est { iid; round; value; proposal } ->
      Instance.on_est (instance_of t iid) ~src ~round ~value proposal
  | Types.Coord { iid; round; value } ->
      Instance.on_coord (instance_of t iid) ~src ~round ~value
  | Types.Aux { iid; round; values } ->
      Instance.on_aux (instance_of t iid) ~src ~round ~values
  | Types.Reveal { iid; share } -> on_reveal t ~src iid share
  | Types.Heartbeat -> try_commit t
  | Types.Nudge { iid } -> on_nudge t ~src iid
  | Types.Decided { iid; value; proposal } ->
      on_decided t ~src iid ~value proposal
  | Types.Sync_req { from_count } -> on_sync_req t ~src ~from_count
  | Types.Sync_resp { from_count; upto; entries } ->
      on_sync_resp t ~src ~from_count ~upto entries

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)
(* ------------------------------------------------------------------ *)

let rec heartbeat_loop t =
  try_commit t;
  sync_tick t;
  (* The loop keeps ticking through a crash (local state survives; the
     network layer swallows traffic), but skip the broadcast so the
     send counters reflect reality. *)
  if not (Sim.Network.is_crashed t.net t.id) then
    Sim.Network.broadcast t.net ~src:t.id
      { status = build_status ~full:true t; body = Types.Heartbeat };
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.config.status_interval_us (fun () ->
         heartbeat_loop t)
      : Sim.Engine.timer)

let warmup t =
  (* Per-node jitter: synchronized warm-up bursts across the whole
     cluster would bias the distance measurements with self-inflicted
     queueing that is absent at client time. *)
  let jitter = Crypto.Rng.int t.rng (max 1 (t.config.warmup_spacing_us / 2)) in
  for k = 0 to t.config.warmup_proposals - 1 do
    ignore
      (Sim.Engine.schedule t.engine
         ~delay:((k * t.config.warmup_spacing_us) + jitter)
         (fun () ->
           if not (Sim.Network.is_crashed t.net t.id) then
             propose_batch t (fresh_txs t 1))
        : Sim.Engine.timer)
  done

let rec flood_loop t rate =
  let interval = max 1 (1_000_000 / max 1 rate) in
  propose_batch t (fresh_txs t t.config.batch_size);
  ignore
    (Sim.Engine.schedule t.engine ~delay:interval (fun () -> flood_loop t rate)
      : Sim.Engine.timer)

let start t =
  if not t.started then begin
    t.started <- true;
    match t.misbehavior with
    | Some Misbehavior.Silent -> Sim.Network.crash t.net t.id
    | Some (Misbehavior.Flood { batches_per_sec }) ->
        heartbeat_loop t;
        retransmit_loop t;
        warmup t;
        ignore
          (Sim.Engine.schedule t.engine
             ~delay:(t.config.warmup_proposals * t.config.warmup_spacing_us)
             (fun () -> flood_loop t batches_per_sec)
            : Sim.Engine.timer)
    | _ ->
        heartbeat_loop t;
        retransmit_loop t;
        warmup t
  end

let create config net ~id ?keys ?dir ?(clock_offset_us = 0)
    ?misbehavior ?(on_observe = fun _ -> ()) ?(on_output = fun _ -> ()) () =
  if config.Config.real_crypto && (keys = None || dir = None) then
    invalid_arg "Node.create: real_crypto requires keys and directory";
  let engine = Sim.Network.engine net in
  let t =
    {
      config;
      id;
      net;
      engine;
      clock = Ordering_clock.create engine ~offset_us:clock_offset_us;
      predictor =
        Predictor.create ~n:config.Config.n ~alpha:config.Config.ewma_alpha
          ~self:id;
      commit = Commit_state.create ~n:config.Config.n ~f:(Dbft.Quorums.max_faulty config.Config.n);
      keys;
      dir;
      vcache = Crypto.Verify_cache.create ();
      rng = Crypto.Rng.split (Sim.Engine.rng engine);
      misbehavior;
      on_observe;
      on_output;
      instances = Hashtbl.create 64;
      own_sref = Hashtbl.create 16;
      pending = Hashtbl.create 32;
      claims = Hashtbl.create 32;
      shares_held = Hashtbl.create 32;
      reveals = Hashtbl.create 32;
      records = Hashtbl.create 32;
      outbox = Queue.create ();
      outputs_rev = [];
      output_count = 0;
      mempool = [];
      mempool_count = 0;
      batch_timer_armed = false;
      next_index = 0;
      inflight = 0;
      tx_counter = 0;
      started = false;
      min_pending_dirty = true;
      min_pending_cache = Types.no_pending;
      gossip_cache = None;
      peer_committed = Array.make config.Config.n 0;
      last_rx = Array.make config.Config.n 0;
      probation_until = 0;
      sync_active = false;
      sync_req_at = 0;
      lag_since = None;
      synced_entries = 0;
      syncs_started = 0;
      decided_votes = Hashtbl.create 8;
      inst_created = Hashtbl.create 64;
      retransmits = 0;
      late_accepts = 0;
      own_accepted = 0;
      own_rejected = 0;
      decide_rounds = Metrics.Recorder.create ();
      boc_latency = Metrics.Recorder.create ();
      phases = Metrics.Phases.create phase_labels;
      phase_marks = Hashtbl.create 16;
      proposals_made = 0;
    }
  in
  Sim.Network.register net ~id (fun ~src msg -> on_message t ~src msg);
  (* Batches held in the mempool during a crash flow again on recovery;
     missed commits are repaired by the sync pull once statuses resume
     and the lag becomes visible — probation makes that immediate. *)
  Sim.Network.on_recover net ~id (fun () ->
      t.probation_until <-
        Sim.Engine.now engine + config.Config.isolation_gap_us;
      maybe_propose t);
  t

let undecided t =
  Sim.Det.sorted_bindings ~cmp:Types.iid_compare t.instances
  |> List.filter_map (fun (iid, inst) ->
         if Instance.decided inst = None then
           Some (iid, Instance.decision_round inst)
         else None)

let commit_diagnostics t =
  ( Commit_state.locked t.commit,
    Commit_state.stable t.commit,
    Commit_state.committed t.commit,
    Commit_state.uncommitted_count t.commit,
    min_pending_value t )

let pending_entries t =
  Sim.Det.sorted_bindings ~cmp:Types.iid_compare t.pending
  |> List.map (fun (iid, e) ->
         let decided, round =
           match Hashtbl.find_opt t.instances iid with
           | Some inst ->
               ( Instance.decided inst,
                 (match Instance.decision_round inst with
                 | Some r -> r
                 | None -> -1) )
           | None -> (None, -99)
         in
         (iid, e.p_seq, e.kind = Validated, decided, round))

let instance_debug t iid =
  Option.map Instance.debug_state (Hashtbl.find_opt t.instances iid)
