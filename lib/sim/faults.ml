type loss_window = {
  l_from_us : int;
  l_until_us : int;
  l_src : int option;
  l_dst : int option;
  l_drop_p : float;
  l_dup_p : float;
}

type partition = { p_from_us : int; p_heal_us : int; p_island : int list }

type crash = { c_node : int; c_at_us : int; c_recover_us : int option }

type eclipse = {
  e_victim : int;
  e_from_us : int;
  e_until_us : int;
  e_owned : int list;
  e_diverse : int list;
  e_delay_us : int option;
}

type delay_inflate = {
  d_from_us : int;
  d_until_us : int;
  d_a : int list;
  d_b : int list;
  d_extra_us : int;
}

type plan = {
  losses : loss_window list;
  partitions : partition list;
  crashes : crash list;
  skews_us : (int * int) list;
  eclipses : eclipse list;
  inflations : delay_inflate list;
}

let none =
  {
    losses = [];
    partitions = [];
    crashes = [];
    skews_us = [];
    eclipses = [];
    inflations = [];
  }

let is_none p =
  match
    (p.losses, p.partitions, p.crashes, p.skews_us, p.eclipses, p.inflations)
  with
  | [], [], [], [], [], [] -> true
  | _ -> false

(* Elements are appended so a plan reads top-to-bottom in the order it
   was built; queries don't depend on the order. *)
let loss ?src ?dst ?(dup_p = 0.0) ~from_us ~until_us ~drop_p plan =
  let w =
    {
      l_from_us = from_us;
      l_until_us = until_us;
      l_src = src;
      l_dst = dst;
      l_drop_p = drop_p;
      l_dup_p = dup_p;
    }
  in
  { plan with losses = plan.losses @ [ w ] }

let partition ~from_us ~heal_us ~island plan =
  let p = { p_from_us = from_us; p_heal_us = heal_us; p_island = island } in
  { plan with partitions = plan.partitions @ [ p ] }

let crash ?recover_us ~node ~at_us plan =
  let c = { c_node = node; c_at_us = at_us; c_recover_us = recover_us } in
  { plan with crashes = plan.crashes @ [ c ] }

let skew ~node ~skew_us plan =
  { plan with skews_us = plan.skews_us @ [ (node, skew_us) ] }

let eclipse ?(diverse = []) ?delay_us ~victim ~from_us ~until_us ~owned plan =
  let e =
    {
      e_victim = victim;
      e_from_us = from_us;
      e_until_us = until_us;
      e_owned = owned;
      e_diverse = diverse;
      e_delay_us = delay_us;
    }
  in
  { plan with eclipses = plan.eclipses @ [ e ] }

let delay_inflate ~from_us ~until_us ~a ~b ~extra_us plan =
  let d =
    {
      d_from_us = from_us;
      d_until_us = until_us;
      d_a = a;
      d_b = b;
      d_extra_us = extra_us;
    }
  in
  { plan with inflations = plan.inflations @ [ d ] }

let island_of_regions ~n regions =
  let placement = Regions.paper_placement n in
  List.filter
    (fun i -> List.exists (fun r -> Regions.equal r placement.(i)) regions)
    (List.init n (fun i -> i))

(* BGP-hijack vocabulary: the hijacked route sits between two regions;
   resolve them to node sets at build time so the plan stays pure data
   and the per-message query needs no region lookup. *)
let delay_inflate_regions ~n ~from_us ~until_us ~between:(ra, rb) ~extra_us plan
    =
  delay_inflate ~from_us ~until_us
    ~a:(island_of_regions ~n [ ra ])
    ~b:(island_of_regions ~n [ rb ])
    ~extra_us plan

let validate plan ~n =
  let node ctx id =
    if id < 0 || id >= n then
      invalid_arg (Printf.sprintf "Faults.validate: %s node %d out of [0,%d)" ctx id n)
  in
  let prob ctx p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Faults.validate: %s probability %g outside [0,1]" ctx p)
  in
  let window ctx from_us until_us =
    if until_us <= from_us then
      invalid_arg
        (Printf.sprintf "Faults.validate: %s window [%d,%d) is empty" ctx from_us until_us)
  in
  List.iter
    (fun w ->
      window "loss" w.l_from_us w.l_until_us;
      prob "drop" w.l_drop_p;
      prob "dup" w.l_dup_p;
      Option.iter (node "loss src") w.l_src;
      Option.iter (node "loss dst") w.l_dst)
    plan.losses;
  List.iter
    (fun p ->
      window "partition" p.p_from_us p.p_heal_us;
      if p.p_island = [] then invalid_arg "Faults.validate: empty partition island";
      List.iter (node "partition") p.p_island)
    plan.partitions;
  List.iter
    (fun c ->
      node "crash" c.c_node;
      if c.c_at_us < 0 then invalid_arg "Faults.validate: crash time negative";
      Option.iter
        (fun r ->
          if r <= c.c_at_us then
            invalid_arg "Faults.validate: recovery not after crash")
        c.c_recover_us)
    plan.crashes;
  List.iter (fun (id, _) -> node "skew" id) plan.skews_us;
  List.iter
    (fun e ->
      window "eclipse" e.e_from_us e.e_until_us;
      node "eclipse victim" e.e_victim;
      List.iter (node "eclipse owned") e.e_owned;
      List.iter (node "eclipse diverse") e.e_diverse;
      if List.exists (Int.equal e.e_victim) e.e_owned then
        invalid_arg "Faults.validate: eclipse victim cannot own its own link";
      if List.exists (Int.equal e.e_victim) e.e_diverse then
        invalid_arg "Faults.validate: eclipse victim listed as its own peer";
      if
        List.exists
          (fun o -> List.exists (Int.equal o) e.e_diverse)
          e.e_owned
      then
        invalid_arg
          "Faults.validate: eclipse claims a link declared diverse \
           (netgroup-diverse links cannot be owned)";
      Option.iter
        (fun d ->
          if d < 0 then invalid_arg "Faults.validate: eclipse delay negative")
        e.e_delay_us)
    plan.eclipses;
  List.iter
    (fun d ->
      window "delay-inflate" d.d_from_us d.d_until_us;
      List.iter (node "delay-inflate a") d.d_a;
      List.iter (node "delay-inflate b") d.d_b;
      if d.d_extra_us < 0 then
        invalid_arg "Faults.validate: delay inflation negative";
      if
        List.exists (fun x -> List.exists (Int.equal x) d.d_b) d.d_a
      then
        invalid_arg
          "Faults.validate: delay-inflate endpoint sets must be disjoint")
    plan.inflations

let in_window ~now ~from_us ~until_us = now >= from_us && now < until_us

let endpoint_matches filter id =
  match filter with None -> true | Some wanted -> Int.equal wanted id

(* Overlapping windows compose as independent trials: the message
   survives only if it survives every active window. *)
let drop_dup plan ~now ~src ~dst =
  List.fold_left
    (fun ((keep_d, keep_u) as acc) w ->
      if
        in_window ~now ~from_us:w.l_from_us ~until_us:w.l_until_us
        && endpoint_matches w.l_src src
        && endpoint_matches w.l_dst dst
      then (keep_d *. (1.0 -. w.l_drop_p), keep_u *. (1.0 -. w.l_dup_p))
      else acc)
    (1.0, 1.0) plan.losses
  |> fun (keep_d, keep_u) -> (1.0 -. keep_d, 1.0 -. keep_u)

let partitioned plan ~now ~src ~dst =
  List.exists
    (fun p ->
      in_window ~now ~from_us:p.p_from_us ~until_us:p.p_heal_us
      &&
      let inside id = List.exists (Int.equal id) p.p_island in
      not (Bool.equal (inside src) (inside dst)))
    plan.partitions

let skew_us plan id =
  List.fold_left
    (fun acc (node, s) -> if Int.equal node id then acc + s else acc)
    0 plan.skews_us

type link_fate = Link_up | Link_cut | Link_delayed of int

(* A link falls to an eclipse when one endpoint is the victim and the
   other is an owned peer. A cut anywhere wins over delays; delays from
   several overlapping eclipses stack. Deliberately RNG-free: eclipse
   is a deterministic adversary move, so attack-free runs (and the
   conditional fault-RNG split) keep the exact golden event sequence. *)
let eclipse_fate plan ~now ~src ~dst =
  List.fold_left
    (fun fate e ->
      match fate with
      | Link_cut -> Link_cut
      | Link_up | Link_delayed _ ->
          let claimed peer other =
            Int.equal peer e.e_victim && List.exists (Int.equal other) e.e_owned
          in
          if
            in_window ~now ~from_us:e.e_from_us ~until_us:e.e_until_us
            && (claimed src dst || claimed dst src)
          then
            match e.e_delay_us with
            | None -> Link_cut
            | Some d ->
                Link_delayed
                  (d + match fate with Link_delayed p -> p | _ -> 0)
          else fate)
    Link_up plan.eclipses

(* Extra one-way delay from active region-pair inflations; directions
   are symmetric and overlapping entries stack. *)
let inflation_us plan ~now ~src ~dst =
  List.fold_left
    (fun acc d ->
      let in_a x = List.exists (Int.equal x) d.d_a in
      let in_b x = List.exists (Int.equal x) d.d_b in
      if
        in_window ~now ~from_us:d.d_from_us ~until_us:d.d_until_us
        && ((in_a src && in_b dst) || (in_b src && in_a dst))
      then acc + d.d_extra_us
      else acc)
    0 plan.inflations

let eclipse_victims plan =
  List.sort_uniq Int.compare (List.map (fun e -> e.e_victim) plan.eclipses)

let active plan ~now =
  let losses =
    List.filter_map
      (fun w ->
        if in_window ~now ~from_us:w.l_from_us ~until_us:w.l_until_us then
          Some
            (Printf.sprintf "loss[%d,%d)p=%g%s" w.l_from_us w.l_until_us
               w.l_drop_p
               (if w.l_dup_p > 0.0 then Printf.sprintf " dup=%g" w.l_dup_p
                else ""))
        else None)
      plan.losses
  in
  let partitions =
    List.filter_map
      (fun p ->
        if in_window ~now ~from_us:p.p_from_us ~until_us:p.p_heal_us then
          Some
            (Printf.sprintf "partition[%d,%d){%s}" p.p_from_us p.p_heal_us
               (String.concat "," (List.map string_of_int p.p_island)))
        else None)
      plan.partitions
  in
  let crashes =
    List.filter_map
      (fun c ->
        let live =
          now >= c.c_at_us
          && match c.c_recover_us with None -> true | Some r -> now < r
        in
        if live then
          Some
            (match c.c_recover_us with
            | None -> Printf.sprintf "crash(n%d@%d)" c.c_node c.c_at_us
            | Some r -> Printf.sprintf "crash(n%d@%d..%d)" c.c_node c.c_at_us r)
        else None)
      plan.crashes
  in
  let eclipses =
    List.filter_map
      (fun e ->
        if in_window ~now ~from_us:e.e_from_us ~until_us:e.e_until_us then
          Some
            (Printf.sprintf "eclipse(n%d owned=%d diverse=%d%s)[%d,%d)"
               e.e_victim (List.length e.e_owned) (List.length e.e_diverse)
               (match e.e_delay_us with
               | None -> ""
               | Some d -> Printf.sprintf " delay=%dus" d)
               e.e_from_us e.e_until_us)
        else None)
      plan.eclipses
  in
  let inflations =
    List.filter_map
      (fun d ->
        if in_window ~now ~from_us:d.d_from_us ~until_us:d.d_until_us then
          Some
            (Printf.sprintf "inflate(+%dus %s|%s)[%d,%d)" d.d_extra_us
               (String.concat "," (List.map string_of_int d.d_a))
               (String.concat "," (List.map string_of_int d.d_b))
               d.d_from_us d.d_until_us)
        else None)
      plan.inflations
  in
  losses @ partitions @ crashes @ eclipses @ inflations
