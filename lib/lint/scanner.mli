(** The static-analysis driver: parses [.ml] sources with
    [compiler-libs.common], runs the per-file Parsetree pass, and — for
    project scans — builds the whole-program {!Callgraph} and runs the
    interprocedural rules ({!Taint}, {!Totality}). *)

type finding = Finding.t = {
  rule : Rules.id;
  file : string;  (** repo-relative, '/'-separated *)
  line : int;  (** 1-based *)
  message : string;
  chain : string list;  (** call chain for D101/D102, else empty *)
}

(** Raised on unreadable or syntactically invalid input. *)
exception Error of string

(** Stable ordering: by file, then line, then rule id. *)
val compare_findings : finding -> finding -> int

(** [scan_source ~rules ~path source] lints one compilation unit given
    as a string — the per-file rules only (interprocedural rules need a
    project). [path] determines scoping (see {!Config}) and is echoed
    in findings; inline ["lint: allow"] directives in [source] are
    honoured. File-level checks (S002) are not applied here. *)
val scan_source : rules:Rules.id list -> path:string -> string -> finding list

(** [scan_project ~rules files] lints a whole program given as
    [(path, source)] pairs: per-file rules on each unit plus the
    interprocedural D101/D102/P001 passes over the shared call graph.

    [allowlist] and inline directives suppress findings *and* taint
    seeds; every allow consulted is tracked, and with {!Rules.S004}
    enabled each allow that suppressed nothing (restricted to rules
    enabled this run) becomes a finding — at its [lint.allow] line for
    file entries, at the directive line for inline allows. S004
    findings are themselves never allowlistable: the ratchet only
    tightens. [extra] merges externally computed findings (S002) into
    the stream before suppression. *)
val scan_project :
  rules:Rules.id list ->
  ?allowlist:Config.allowlist ->
  ?extra:finding list ->
  (string * string) list ->
  finding list

(** All [.ml] files the linter would examine under [root]
    (repo-relative, sorted). *)
val source_files : string -> string list

(** [scan_root ~rules ~allowlist ~root] walks {!Config.scanned_dirs}
    under [root], adds the S002 interface check, and runs
    {!scan_project} on the result. The result is sorted with
    {!compare_findings}. *)
val scan_root :
  rules:Rules.id list -> allowlist:Config.allowlist -> root:string -> finding list
