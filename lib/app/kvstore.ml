type t = {
  table : (string, string) Hashtbl.t;
  mutable digest : string;
  mutable applied : int;
}

type command = Put of string * string | Get of string | Del of string

type result = Unit | Value of string option

let create () = { table = Hashtbl.create 64; digest = ""; applied = 0 }

let parse s =
  match String.split_on_char ' ' s with
  | [ "put"; k; v ] -> Some (Put (k, v))
  | [ "get"; k ] -> Some (Get k)
  | [ "del"; k ] -> Some (Del k)
  | _ -> None

let encode = function
  | Put (k, v) -> Printf.sprintf "put %s %s" k v
  | Get k -> Printf.sprintf "get %s" k
  | Del k -> Printf.sprintf "del %s" k

let fold_digest t s = t.digest <- Crypto.Sha256.digest_list [ t.digest; s ]

let apply t cmd =
  t.applied <- t.applied + 1;
  fold_digest t (encode cmd);
  match cmd with
  | Put (k, v) ->
      Hashtbl.replace t.table k v;
      Unit
  | Get k -> Value (Hashtbl.find_opt t.table k)
  | Del k ->
      Hashtbl.remove t.table k;
      Unit

let apply_payload t s =
  match parse s with
  | Some cmd -> Some (apply t cmd)
  | None ->
      t.applied <- t.applied + 1;
      fold_digest t s;
      None

let get t k = Hashtbl.find_opt t.table k

let size t = Hashtbl.length t.table

let applied t = t.applied

let state_digest t = if t.digest = "" then Crypto.Sha256.digest "" else t.digest
