type kind = Timer | Wire | Cpu_job | Nic_tx

let kind_index = function Timer -> 0 | Wire -> 1 | Cpu_job -> 2 | Nic_tx -> 3

let kind_name = function
  | Timer -> "timer"
  | Wire -> "wire"
  | Cpu_job -> "cpu"
  | Nic_tx -> "nic"

let all_kinds = [ Timer; Wire; Cpu_job; Nic_tx ]

(* A cancelled timer stays in the wheel (removing an arbitrary queued
   entry would mean hunting through its bucket); [live] counts the
   entries that will actually fire,
   so cancellations neither inflate [pending] nor burn the
   [run_until_idle] budget. The timer carries its owner to let [cancel]
   maintain the count without a lookup. *)
type timer = {
  mutable cancelled : bool;
  t_kind : int;
  action : unit -> unit;
  owner : t;
}

and t = {
  wheel : timer Timing_wheel.t;
  mutable clock : int;
  root_rng : Crypto.Rng.t;
  mutable executed : int;
  mutable live : int;
  kind_counts : int array;
}

let create ?(seed = 0xC0FFEEL) () =
  {
    wheel = Timing_wheel.create ();
    clock = 0;
    root_rng = Crypto.Rng.create seed;
    executed = 0;
    live = 0;
    kind_counts = Array.make 4 0;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at ?(kind = Timer) t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.clock);
  let timer =
    { cancelled = false; t_kind = kind_index kind; action; owner = t }
  in
  Timing_wheel.push t.wheel ~time timer;
  t.live <- t.live + 1;
  timer

let schedule ?kind t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock + delay) action

let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    timer.owner.live <- timer.owner.live - 1
  end

(* Discard cancelled entries sitting at the wheel head, so time-bound
   checks ([run]'s peek) never see a timestamp that nothing will fire
   at — otherwise skipping a cancelled head inside [step] could carry
   execution past [until]. *)
let rec purge_cancelled t =
  match Timing_wheel.peek t.wheel with
  | Some (_, timer) when timer.cancelled ->
      ignore (Timing_wheel.pop t.wheel : (int * timer) option);
      purge_cancelled t
  | Some _ | None -> ()

let rec step t =
  match Timing_wheel.pop t.wheel with
  | None -> false
  | Some (_, timer) when timer.cancelled -> step t
  | Some (time, timer) ->
      t.clock <- time;
      t.live <- t.live - 1;
      t.executed <- t.executed + 1;
      t.kind_counts.(timer.t_kind) <- t.kind_counts.(timer.t_kind) + 1;
      timer.action ();
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    purge_cancelled t;
    match Timing_wheel.peek_time t.wheel with
    | Some time when time <= until -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  t.clock <- max t.clock until

let run_until_idle ?(limit = 500_000_000) t =
  let budget = ref limit in
  while t.live > 0 && !budget > 0 do
    (* [step] skips cancelled entries without charging the budget: only
       events that actually execute count against the limit. *)
    ignore (step t : bool);
    decr budget
  done;
  if t.live > 0 then failwith "Engine.run_until_idle: event limit exceeded"

let events_executed t = t.executed

let executed_by_kind t =
  List.map (fun k -> (kind_name k, t.kind_counts.(kind_index k))) all_kinds

let pending t = t.live
