(* P001: handler totality over protocol message types.

   A protocol's wire type is whatever it instantiates the simulator
   with, so we seed from every [ty Sim.Network.t] (or [ty Network.t])
   type expression in the program, resolve [ty], and transitively close
   over the type declarations it references (a message record
   referencing a body variant referencing a vote variant, etc.). The
   union of the variant constructor names reached this way is the
   "message constructor" set.

   Inside {!Config.totality_dirs} we then flag any [match]/[function]
   with a catch-all [_] arm alongside an arm headed by a message
   constructor: a wildcard there silently drops every constructor added
   later, which is exactly how reordering-defense messages get ignored.
   Binding the scrutinee to a *named* variable is not flagged (that is
   a deliberate "all messages" handler), and constructor *arguments*
   are never inspected, so [Some {msg = _}] style wildcards over
   internal state stay legal. *)

let ends_with_network_t parts =
  match List.rev parts with
  | "t" :: "Network" :: _ -> true
  | _ -> false

(* Every (unit, type-path) instantiating the network functor-free
   simulator channel. *)
let network_seeds (u : Callgraph.unit_info) =
  let seeds = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun it ty ->
          (match ty.Parsetree.ptyp_desc with
          | Parsetree.Ptyp_constr ({ txt; _ }, arg0 :: _) -> (
              match Callgraph.flatten txt with
              | Some parts when ends_with_network_t parts -> (
                  match arg0.Parsetree.ptyp_desc with
                  | Parsetree.Ptyp_constr ({ txt = t; _ }, _) -> (
                      match Callgraph.flatten t with
                      | Some tparts -> seeds := tparts :: !seeds
                      | None -> ())
                  | _ -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.typ it ty);
    }
  in
  it.structure it u.u_structure;
  List.rev !seeds

(* Transitive closure over referenced type declarations, collecting
   variant constructor names. *)
let message_ctors cg =
  let ctors = Hashtbl.create 64 in
  let visited = ref [] in
  let rec close u parts =
    match Callgraph.resolve_type cg u parts with
    | None -> ()
    | Some (u', (td : Callgraph.tydecl)) ->
        if not (List.memq td !visited) then begin
          visited := td :: !visited;
          List.iter (fun c -> Hashtbl.replace ctors c ()) td.ty_ctors;
          List.iter
            (fun lid ->
              match Callgraph.flatten lid with
              | Some p -> close u' p
              | None -> ())
            td.ty_refs
        end
  in
  List.iter
    (fun (u : Callgraph.unit_info) ->
      List.iter (fun parts -> close u parts) (network_seeds u))
    (Callgraph.units cg);
  ctors

(* A pattern that matches *everything*: a bare [_], possibly behind
   alias/constraint/open, or an or-pattern with such a branch. Named
   variables are deliberate and not counted. *)
let rec is_catch_all (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias (p, _)
  | Parsetree.Ppat_constraint (p, _)
  | Parsetree.Ppat_open (_, p) ->
      is_catch_all p
  | Parsetree.Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

(* Head constructor names of a pattern; tuple components each
   contribute a head, constructor arguments are not descended into. *)
let rec ctor_heads (p : Parsetree.pattern) acc =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_construct ({ txt; _ }, _) -> (
      match Callgraph.flatten txt with
      | Some parts -> (List.nth parts (List.length parts - 1), line_of_pat p) :: acc
      | None -> acc)
  | Parsetree.Ppat_alias (p, _)
  | Parsetree.Ppat_constraint (p, _)
  | Parsetree.Ppat_open (_, p) ->
      ctor_heads p acc
  | Parsetree.Ppat_or (a, b) -> ctor_heads a (ctor_heads b acc)
  | Parsetree.Ppat_tuple ps -> List.fold_left (fun acc p -> ctor_heads p acc) acc ps
  | _ -> acc

and line_of_pat (p : Parsetree.pattern) =
  p.Parsetree.ppat_loc.Location.loc_start.Lexing.pos_lnum

let scan_matches ctors (u : Callgraph.unit_info) =
  let findings = ref [] in
  let check_cases (cases : Parsetree.case list) =
    let msg_ctor =
      List.find_map
        (fun (c : Parsetree.case) ->
          List.find_opt (fun (name, _) -> Hashtbl.mem ctors name) (ctor_heads c.Parsetree.pc_lhs []))
        cases
    in
    match msg_ctor with
    | None -> ()
    | Some (name, _) ->
        List.iter
          (fun (c : Parsetree.case) ->
            if is_catch_all c.Parsetree.pc_lhs then
              findings :=
                Finding.make Rules.P001 ~file:u.u_path
                  ~line:(line_of_pat c.Parsetree.pc_lhs)
                  (Printf.sprintf
                     "catch-all '_' arm in a match over message constructors (saw %s); \
                      new constructors would be silently dropped — enumerate the arms or bind a variable"
                     name)
                :: !findings)
          cases
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_function cases ->
              check_cases cases
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it u.u_structure;
  List.rev !findings

let analyze cg =
  let ctors = message_ctors cg in
  List.concat_map
    (fun (u : Callgraph.unit_info) ->
      if Config.in_totality_scope u.u_path then scan_matches ctors u else [])
    (Callgraph.units cg)
