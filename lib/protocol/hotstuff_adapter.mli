(** {!Node_intf.NODE} adapter over {!Hotstuff.Smr} — the plain
    chained-HotStuff SMR baseline ("ordering phase removed", §VI).

    [censor id] gives node [id]'s leader-censorship predicate (batches
    it refuses to include in its own blocks). HotStuff nodes have no
    clock-offset parameter: ordering is whatever the leader says. *)
val make :
  ?tweak:(Hotstuff.Smr.config -> Hotstuff.Smr.config) ->
  ?censor:(int -> Lyra.Types.iid -> bool) ->
  ?regions:Sim.Regions.t array ->
  unit ->
  (module Node_intf.NODE)
