(** P001: no catch-all [_] arms in matches over protocol message
    constructors (inside {!Config.totality_dirs}).

    Message types are discovered from [ty Sim.Network.t] instantiations
    and closed transitively over the type declarations they reference;
    the flagged arm is the wildcard itself. Binding a variable instead
    of [_] is not flagged, and constructor arguments are never
    inspected. *)

val analyze : Callgraph.t -> Finding.t list
