(* A single diagnostic. [chain] is empty for the per-file rules; the
   interprocedural rules (D101/D102) fill it with one entry per hop,
   caller first, nondeterministic source last, each formatted as
   "path:line what". *)

type t = {
  rule : Rules.id;
  file : string;
  line : int;
  message : string;
  chain : string list;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare (Rules.to_string a.rule) (Rules.to_string b.rule)
      | c -> c)
  | c -> c

let make ?(chain = []) rule ~file ~line message =
  { rule; file; line; message; chain }
