(* Unit tests of Lyra's building blocks: ordering clock, predictor,
   requested sequence numbers, commit-state prefix math, types. *)

let test_clock_monotone () =
  let e = Sim.Engine.create () in
  let clock = Lyra.Ordering_clock.create e ~offset_us:500 in
  Alcotest.(check int) "offset applied" 500 (Lyra.Ordering_clock.peek clock);
  let a = Lyra.Ordering_clock.read clock in
  let b = Lyra.Ordering_clock.read clock in
  Alcotest.(check bool) "strictly increasing" true (b > a);
  Sim.Engine.run e ~until:1_000;
  Alcotest.(check bool) "tracks time" true (Lyra.Ordering_clock.read clock >= 1_500)

let test_predictor_learns () =
  let p = Lyra.Predictor.create ~n:4 ~alpha:0.5 ~self:0 in
  Alcotest.(check int) "self known" 1 (Lyra.Predictor.known_count p);
  Alcotest.(check (option int)) "self zero" (Some 0) (Lyra.Predictor.distance p ~peer:0);
  Alcotest.(check (option int)) "unknown" None (Lyra.Predictor.distance p ~peer:2);
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:1_100;
  Alcotest.(check (option int)) "first sample" (Some 100) (Lyra.Predictor.distance p ~peer:2);
  (* The estimate is a window median: an isolated queueing spike does
     not move it. *)
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:1_105;
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:250_000;
  Alcotest.(check (option int)) "median ignores spike" (Some 105)
    (Lyra.Predictor.distance p ~peer:2);
  (* but a consistent regime change wins within window/2 samples *)
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:1_500;
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:1_500;
  Lyra.Predictor.observe p ~peer:2 ~s_ref:1_000 ~seq_obs:1_500;
  Alcotest.(check (option int)) "regime change" (Some 500)
    (Lyra.Predictor.distance p ~peer:2)

let test_predictor_clamps_lies () =
  let p = Lyra.Predictor.create ~n:3 ~alpha:1.0 ~self:0 in
  Lyra.Predictor.observe p ~peer:1 ~s_ref:1_000 ~seq_obs:0;
  (* wildly negative measurement clamps at 0 *)
  Alcotest.(check (option int)) "clamped" (Some 0) (Lyra.Predictor.distance p ~peer:1)

let test_predictor_predict_blanks () =
  let p = Lyra.Predictor.create ~n:3 ~alpha:0.5 ~self:0 in
  Lyra.Predictor.observe p ~peer:1 ~s_ref:0 ~seq_obs:50;
  let st = Lyra.Predictor.predict p ~s_ref:1_000 in
  Alcotest.(check (array (option int))) "blanks preserved"
    [| Some 1_000; Some 1_050; None |] st

let test_requested_seq () =
  (* n = 4, f = 1: the requested seq is the 3rd smallest. *)
  let st = [| Some 10; Some 30; Some 20; Some 40 |] in
  Alcotest.(check (option int)) "3rd smallest" (Some 30)
    (Lyra.Types.requested_seq ~n:4 ~f:1 st);
  (* blanks sort last *)
  let st = [| Some 10; None; Some 20; Some 40 |] in
  Alcotest.(check (option int)) "blank last" (Some 40)
    (Lyra.Types.requested_seq ~n:4 ~f:1 st);
  (* too many blanks: no quorum of predictions *)
  let st = [| Some 10; None; None; Some 40 |] in
  Alcotest.(check (option int)) "insufficient" None
    (Lyra.Types.requested_seq ~n:4 ~f:1 st);
  (* wrong arity *)
  Alcotest.(check (option int)) "arity" None
    (Lyra.Types.requested_seq ~n:4 ~f:1 [| Some 1 |])

let test_requested_seq_lemma2_bound () =
  (* Lemma 2: at most f entries exceed the requested value. *)
  let rng = Crypto.Rng.create 77L in
  for _ = 1 to 200 do
    let n = 4 + Crypto.Rng.int rng 20 in
    let f = Dbft.Quorums.max_faulty n in
    let st = Array.init n (fun _ -> Some (Crypto.Rng.int rng 100_000)) in
    match Lyra.Types.requested_seq ~n ~f st with
    | None -> Alcotest.fail "must exist"
    | Some s ->
        let above =
          Array.fold_left
            (fun acc -> function Some v when v > s -> acc + 1 | _ -> acc)
            0 st
        in
        Alcotest.(check bool) "at most f above" true (above <= f)
  done

let test_observable_txs () =
  let tx = { Lyra.Types.tx_id = "t"; payload = "p"; submitted_at = 0; origin = 0 } in
  let batch obf =
    { Lyra.Types.iid = { proposer = 0; index = 0 }; txs = [| tx |]; obf; created_at = 0 }
  in
  Alcotest.(check bool) "clear visible" true
    (Lyra.Types.observable_txs (batch Lyra.Types.Clear) <> None);
  Alcotest.(check bool) "structural hidden" true
    (Lyra.Types.observable_txs (batch Lyra.Types.Structural) = None)

let test_digest_distinguishes () =
  let tx id = { Lyra.Types.tx_id = id; payload = "p"; submitted_at = 0; origin = 0 } in
  let proposal id st =
    {
      Lyra.Types.batch =
        {
          iid = { proposer = 0; index = 0 };
          txs = [| tx id |];
          obf = Lyra.Types.Structural;
          created_at = 5;
        };
      st;
    }
  in
  let a = Lyra.Types.proposal_digest (proposal "a" [| Some 1 |]) in
  let b = Lyra.Types.proposal_digest (proposal "b" [| Some 1 |]) in
  let c = Lyra.Types.proposal_digest (proposal "a" [| Some 2 |]) in
  Alcotest.(check bool) "txs matter" true (not (String.equal a b));
  Alcotest.(check bool) "st matters" true (not (String.equal a c));
  Alcotest.(check string) "deterministic" a
    (Lyra.Types.proposal_digest (proposal "a" [| Some 1 |]))

let test_config_derived () =
  let cfg = Lyra.Config.default ~n:16 in
  Alcotest.(check int) "f" 5 (Lyra.Config.f cfg);
  Alcotest.(check int) "quorum" 11 (Lyra.Config.quorum cfg);
  Alcotest.(check int) "supermajority" 11 (Lyra.Config.supermajority cfg);
  Alcotest.(check int) "L = 3 delta" (3 * cfg.delta_us) (Lyra.Config.l_us cfg)

(* --- Commit_state (Alg. 4 lines 79-95) --- *)

let iid p i = { Lyra.Types.proposer = p; index = i }

let test_commit_state_locked () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  Alcotest.(check int) "initially 0" 0 (Lyra.Commit_state.locked cs);
  (* locked = min of the 2f+1 = 3 highest reports *)
  Lyra.Commit_state.peer_status cs ~peer:0 ~locked:100 ~min_pending:1_000;
  Lyra.Commit_state.peer_status cs ~peer:1 ~locked:200 ~min_pending:1_000;
  Lyra.Commit_state.peer_status cs ~peer:2 ~locked:300 ~min_pending:1_000;
  Lyra.Commit_state.peer_status cs ~peer:3 ~locked:400 ~min_pending:1_000;
  Alcotest.(check int) "3rd highest" 200 (Lyra.Commit_state.locked cs)

let test_commit_state_byzantine_low () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  (* one Byzantine process reporting 0 forever cannot stall the prefix *)
  Lyra.Commit_state.peer_status cs ~peer:0 ~locked:0 ~min_pending:0;
  Lyra.Commit_state.peer_status cs ~peer:1 ~locked:500 ~min_pending:800;
  Lyra.Commit_state.peer_status cs ~peer:2 ~locked:600 ~min_pending:900;
  Lyra.Commit_state.peer_status cs ~peer:3 ~locked:700 ~min_pending:950;
  Alcotest.(check int) "locked ignores liar" 500 (Lyra.Commit_state.locked cs);
  Alcotest.(check int) "stable ignores liar" 500 (Lyra.Commit_state.stable cs)

let test_commit_state_stable_pending_bound () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  Lyra.Commit_state.peer_status cs ~peer:0 ~locked:1_000 ~min_pending:300;
  Lyra.Commit_state.peer_status cs ~peer:1 ~locked:1_000 ~min_pending:400;
  Lyra.Commit_state.peer_status cs ~peer:2 ~locked:1_000 ~min_pending:500;
  Lyra.Commit_state.peer_status cs ~peer:3 ~locked:1_000 ~min_pending:600;
  (* stable = min(locked, 3rd-highest pending) = min(1000, 400) *)
  Alcotest.(check int) "pending bound" 400 (Lyra.Commit_state.stable cs)

let test_commit_state_committed_and_take () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  for p = 0 to 3 do
    Lyra.Commit_state.peer_status cs ~peer:p ~locked:250 ~min_pending:10_000
  done;
  Lyra.Commit_state.add_accepted cs (iid 0 0) ~seq:100;
  Lyra.Commit_state.add_accepted cs (iid 1 0) ~seq:200;
  Lyra.Commit_state.add_accepted cs (iid 2 0) ~seq:300;
  Alcotest.(check bool) "is accepted" true (Lyra.Commit_state.is_accepted cs (iid 0 0));
  Alcotest.(check int) "committed = 200" 200 (Lyra.Commit_state.committed cs);
  let taken = Lyra.Commit_state.take_committable cs in
  Alcotest.(check (list (pair (pair int int) int))) "in order"
    [ ((0, 0), 100); ((1, 0), 200) ]
    (List.map (fun ((i : Lyra.Types.iid), s) -> ((i.proposer, i.index), s)) taken);
  (* second take is empty until stable advances *)
  Alcotest.(check (list int)) "drained" []
    (List.map snd (Lyra.Commit_state.take_committable cs));
  Alcotest.(check int) "recent holds the rest" 1
    (List.length (Lyra.Commit_state.accepted_recent cs))

let test_commit_state_ordering_ties () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  for p = 0 to 3 do
    Lyra.Commit_state.peer_status cs ~peer:p ~locked:1_000 ~min_pending:10_000
  done;
  (* equal seq: deterministic (proposer, index) tie-break *)
  Lyra.Commit_state.add_accepted cs (iid 2 5) ~seq:100;
  Lyra.Commit_state.add_accepted cs (iid 1 9) ~seq:100;
  let taken = Lyra.Commit_state.take_committable cs in
  Alcotest.(check (list int)) "tie break by proposer" [ 1; 2 ]
    (List.map (fun ((i : Lyra.Types.iid), _) -> i.proposer) taken)

let test_commit_state_idempotent_accept () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  Lyra.Commit_state.add_accepted cs (iid 0 0) ~seq:100;
  Lyra.Commit_state.add_accepted cs (iid 0 0) ~seq:100;
  Alcotest.(check int) "once" 1 (Lyra.Commit_state.accepted_count cs)

let test_commit_state_version_bumps () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  let v0 = Lyra.Commit_state.version cs in
  Lyra.Commit_state.add_accepted cs (iid 0 0) ~seq:100;
  Alcotest.(check bool) "bumped" true (Lyra.Commit_state.version cs > v0)

let test_commit_state_locked_monotone () =
  let cs = Lyra.Commit_state.create ~n:4 ~f:1 in
  for p = 0 to 3 do
    Lyra.Commit_state.peer_status cs ~peer:p ~locked:500 ~min_pending:10_000
  done;
  (* a stale lower report cannot regress the lock *)
  Lyra.Commit_state.peer_status cs ~peer:0 ~locked:100 ~min_pending:10_000;
  Alcotest.(check int) "monotone" 500 (Lyra.Commit_state.locked cs)

let test_misbehavior_labels () =
  Alcotest.(check string) "silent" "silent" (Lyra.Misbehavior.to_string Lyra.Misbehavior.Silent);
  Alcotest.(check string) "flood" "flood(4/s)"
    (Lyra.Misbehavior.to_string (Lyra.Misbehavior.Flood { batches_per_sec = 4 }))

let suite =
  [
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "predictor learns" `Quick test_predictor_learns;
    Alcotest.test_case "predictor clamps" `Quick test_predictor_clamps_lies;
    Alcotest.test_case "predictor blanks" `Quick test_predictor_predict_blanks;
    Alcotest.test_case "requested seq" `Quick test_requested_seq;
    Alcotest.test_case "lemma 2 bound" `Quick test_requested_seq_lemma2_bound;
    Alcotest.test_case "observable txs" `Quick test_observable_txs;
    Alcotest.test_case "digest distinguishes" `Quick test_digest_distinguishes;
    Alcotest.test_case "config derived" `Quick test_config_derived;
    Alcotest.test_case "commit locked" `Quick test_commit_state_locked;
    Alcotest.test_case "commit byz low" `Quick test_commit_state_byzantine_low;
    Alcotest.test_case "commit stable pending" `Quick test_commit_state_stable_pending_bound;
    Alcotest.test_case "commit take" `Quick test_commit_state_committed_and_take;
    Alcotest.test_case "commit tie break" `Quick test_commit_state_ordering_ties;
    Alcotest.test_case "commit idempotent" `Quick test_commit_state_idempotent_accept;
    Alcotest.test_case "commit version" `Quick test_commit_state_version_bumps;
    Alcotest.test_case "commit locked monotone" `Quick test_commit_state_locked_monotone;
    Alcotest.test_case "misbehavior labels" `Quick test_misbehavior_labels;
  ]
