type t = {
  gst : int;
  policy : Crypto.Rng.t -> now:int -> src:int -> dst:int -> int;
}

let extra_delay t rng ~now ~src ~dst = t.policy rng ~now ~src ~dst

let gst t = t.gst

let none = { gst = 0; policy = (fun _ ~now:_ ~src:_ ~dst:_ -> 0) }

let pre_gst ~gst ~max_extra =
  let policy rng ~now ~src:_ ~dst:_ =
    if now >= gst then 0
    else
      let extra = Crypto.Rng.int rng (max_extra + 1) in
      (* Cap so that nothing outlives GST by more than max_extra. *)
      min extra (gst + max_extra - now)
  in
  { gst; policy }

let targeted ~gst ~max_extra ~victims =
  let victim = Array.make (1 + List.fold_left max 0 victims) false in
  List.iter (fun v -> victim.(v) <- true) victims;
  let is_victim i = i < Array.length victim && victim.(i) in
  let policy rng ~now ~src ~dst =
    if now >= gst || not (is_victim src || is_victim dst) then 0
    else min (Crypto.Rng.int rng (max_extra + 1)) (gst + max_extra - now)
  in
  { gst; policy }

let custom policy = { gst = 0; policy }
