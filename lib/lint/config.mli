(** Scope policy and allowlisting for {!Scanner}.

    Paths handled here are always repo-relative with ['/'] separators
    (e.g. ["lib/lyra/node.ml"]). *)

(** Top-level directories the linter walks, in scan order. *)
val scanned_dirs : string list

(** Directories whose code must be bit-for-bit deterministic; {!Rules.D001}
    only applies here. *)
val deterministic_dirs : string list

val is_deterministic : string -> bool

val in_lib : string -> bool

(** [lib/crypto/rng] is the sanctioned source of (seeded) randomness and
    exempt from the [Random] bans of {!Rules.D002}. *)
val is_rng_module : string -> bool

(** {1 The [lint.allow] file}

    One entry per line: ["RULE path[:line]"]. ['#'] starts a comment.
    An entry without [:line] allows the rule anywhere in that file. *)

type entry = { rule : string; path : string; line : int option }

type allowlist = entry list

val parse : string -> (allowlist, string) result

(** [load file] reads and parses [file]. *)
val load : string -> (allowlist, string) result

val allows : allowlist -> rule:Rules.id -> path:string -> line:int -> bool

(** {1 Inline allows}

    A source comment containing ["lint: allow R1 R2 ..."] exempts
    findings on the directive's own line and on the line directly
    below it. *)

(** [inline_allows source] returns [(line, rule ids)] for every
    directive in [source]; lines are 1-based. *)
val inline_allows : string -> (int * string list) list

val inline_allowed : (int * string list) list -> rule:Rules.id -> line:int -> bool
