type t = {
  n : int;
  delta_us : int;
  batch_size : int;
  batch_timeout_us : int;
  max_inflight : int;
  block_capacity : int;
  exec_window_us : int;
  real_crypto : bool;
  tx_size : int;
  clock_offset_max_us : int;
  fetch_base_us : int;
  fetch_retry_max : int;
  order_retry_us : int;
  order_retry_max : int;
}

let default ~n =
  {
    n;
    delta_us = 160_000;
    batch_size = 800;
    batch_timeout_us = 50_000;
    max_inflight = 16;
    block_capacity = 8;
    exec_window_us = 500_000;
    real_crypto = false;
    tx_size = 32;
    clock_offset_max_us = 2_000;
    fetch_base_us = 200_000;
    fetch_retry_max = 10;
    order_retry_us = 1_000_000;
    order_retry_max = 8;
  }

let f t = Dbft.Quorums.max_faulty t.n

let supermajority t = (2 * f t) + 1
