(* The Fig. 1 story, narrated: Alice (Tokyo) submits a transaction;
   Mallory (Singapore) sees it in flight and races her own through a
   triangle-inequality shortcut to the Sydney quorum.

       dune exec examples/frontrun_demo.exe

   Under Pompē the race wins; under Lyra Mallory sees only ciphertext. *)

let () =
  let open Sim.Regions in
  Printf.printf "One-way latencies (ms):\n";
  Printf.printf "  Tokyo -> Sydney     %3d  (direct, via a routing detour)\n"
    (one_way_us Tokyo Sydney / 1000);
  Printf.printf "  Tokyo -> Singapore  %3d\n" (one_way_us Tokyo Singapore / 1000);
  Printf.printf "  Singapore -> Sydney %3d\n" (one_way_us Singapore Sydney / 1000);
  Printf.printf "  => relayed path %d ms beats the direct %d ms: %b\n\n"
    ((one_way_us Tokyo Singapore + one_way_us Singapore Sydney) / 1000)
    (one_way_us Tokyo Sydney / 1000)
    (violates_triangle ~src:Tokyo ~via:Singapore ~dst:Sydney);

  Printf.printf
    "Scenario: Alice (node 0, Tokyo) submits a DEX swap. Mallory (node 1,\n\
     Singapore) watches the mempool; the 2f+1 quorum majority is in Sydney.\n\n";

  Printf.printf "--- Pompē (cleartext ordering phase) ---\n%!";
  let p = Attacks.Frontrun.run ~trials:5 ~protocol:"pompe" () in
  Format.printf "  %a@." Attacks.Frontrun.pp_outcome p;
  Printf.printf
    "  Mallory read Alice's payload %d/%d times; her transaction was\n\
     sequenced BEFORE Alice's in %d/%d trials (mean gap %.1f ms) even\n\
     though it was issued ~34 ms later.\n\n"
    p.observed p.trials p.succeeded p.trials p.victim_first_gap_ms;

  Printf.printf "--- Lyra (commit-reveal obfuscation) ---\n%!";
  let l = Attacks.Frontrun.run ~trials:5 ~protocol:"lyra" () in
  Format.printf "  %a@." Attacks.Frontrun.pp_outcome l;
  Printf.printf
    "  Mallory observed a payload %d/%d times: the VSS cipher reveals\n\
     nothing before commitment, so the attack never launches.\n"
    l.observed l.trials;
  assert (p.succeeded > 0 && l.succeeded = 0);
  print_endline "\nfrontrun_demo OK"
