(** Binary Value Broadcast (Mostéfaoui, Moumen & Raynal [25]), the
    reliable broadcast abstraction for binary values that DBFT rounds
    are built on — and that Lyra's Validating Value Broadcast extends.

    Guarantees: every delivered value was broadcast by a correct
    process (BV-Justification), all correct processes eventually
    deliver the same growing set (BV-Uniformity), and at least one
    value is eventually delivered (BV-Obligation).

    The module is transport-agnostic: it asks the host to [echo] EST
    messages and reports deliveries through [deliver]. The host feeds
    incoming EST messages via {!on_est}; self-delivery of the host's
    own echoes must come back through {!on_est} too (broadcasting to
    yourself is the host's job). *)

type t

(** [create ~n ~echo ~deliver ()] — [echo b] must broadcast EST(b) to
    all n processes (including self); [deliver b] is invoked exactly
    once per delivered binary value. *)
val create : n:int -> echo:(int -> unit) -> deliver:(int -> unit) -> unit -> t

(** [input t b] broadcasts this process's estimate (b ∈ {0, 1}). *)
val input : t -> int -> unit

(** [on_est t ~src b] processes EST(b) from process [src]. Duplicate
    messages from the same sender are ignored. *)
val on_est : t -> src:int -> int -> unit

(** [delivered t b] tells whether [b] is in bin_values. *)
val delivered : t -> int -> bool

(** Current bin_values, sorted. *)
val values : t -> int list
