(** Simulated point-to-point network with authenticated channels
    (§II-A), parameterized by the protocol's message type.

    A message from [src] to [dst] pays, in order:
    - transmission time on [src]'s egress NIC ([size msg] bytes at the
      configured line rate; broadcasts serialize n transmissions, which
      is what makes a HotStuff leader a bandwidth bottleneck);
    - link latency (+ adversarial delay before GST) on the wire;
    - CPU service on [dst] ([cost ~dst msg] µs on a FIFO CPU queue).

    Self-addressed messages skip the NIC and wire but still pay CPU.

    Reliability is plan-dependent: with the default empty {!Faults}
    plan, messages are never lost or tampered with and Byzantine
    behaviour lives in the node logic, not the transport. A non-empty
    plan may drop or duplicate messages inside loss windows, cut links
    across a partition, crash/recover nodes on schedule, cut or delay
    an eclipse victim's owned links, and inflate region-pair latency
    (BGP-hijack style) — all deterministically in the engine seed.
    Messages are never tampered with or reordered beyond their sampled
    delays in any plan.

    Orthogonally, a {!Perturb} spec adds deterministic extra delay to
    selected wire messages — the schedule-space explorer's lever for
    forcing adversarial interleavings without touching the RNG
    streams. *)

type 'msg t

(** How {!broadcast} spreads a message. [All_to_all] (the default) has
    the origin transmit to every node — n serialized NIC transmissions.
    [Gossip] sends on a seeded bounded-fanout overlay instead: the
    origin transmits only to its [fanout] neighbors, every node relays
    a broadcast it has not seen before to its own neighbors, and a
    per-node seen-set suppresses duplicates at wire arrival (before any
    CPU charge). Each node's neighbor set contains the ring successor
    (keeping the directed overlay strongly connected, so a fault-free
    broadcast still reaches everyone) plus [fanout − 1] seeded uniform
    picks. Total traffic grows to O(n · fanout) messages, but the
    origin's O(n) egress serialization — the leader bottleneck —
    disappears. Handlers observe relayed messages with [~src] equal to
    the original broadcaster, preserving the authenticated-channel
    abstraction. Point-to-point {!send} is unaffected. *)
type dissemination = All_to_all | Gossip of { fanout : int }

(** [create engine ~n ~latency ~cost ~size ()] builds a network of [n]
    endpoints. [cost ~dst msg] is the CPU service time (µs) node [dst]
    pays to process [msg]; [size msg] its wire size in bytes.
    [ns_per_byte] sets the per-node line rate (default 8 ≈ 1 Gb/s);
    [cores] the per-node CPU parallelism (default 8, as the paper's
    16-vCPU machines). [faults] schedules transport/process faults
    (validated against [n]; default {!Faults.none} keeps the transport
    perfectly reliable and consumes no extra randomness). [trace]
    records a {!Trace.Fault} event per drop, duplicate, crash and
    recovery, and — when the [Net] category is subscribed — a
    {!Trace.Send} per message handed to the transport. Drop and
    duplication windows are sampled independently, so the observed
    drop and duplicate rates each match their configured
    probabilities. [perturb] (default {!Perturb.none}) adds
    deterministic extra delays to matching wire messages; the empty
    spec draws no randomness and schedules nothing, so it leaves the
    event schedule bit-identical. The wire-entry counter that
    [Perturb.Delay_nth] addresses advances for every non-self message
    handed to the wire, even ones a partition or loss window then
    drops. *)
val create :
  Engine.t ->
  n:int ->
  latency:Latency.t ->
  ?adversary:Adversary.t ->
  ?ns_per_byte:int ->
  ?cores:int ->
  ?faults:Faults.plan ->
  ?perturb:Perturb.t ->
  ?trace:Trace.t ->
  ?dissemination:dissemination ->
  cost:(dst:int -> 'msg -> int) ->
  size:('msg -> int) ->
  unit ->
  'msg t

(** [register t ~id handler] installs the message handler of node [id];
    [handler ~src msg] runs after CPU service completes. The handler
    survives crash/recovery. *)
val register : 'msg t -> id:int -> (src:int -> 'msg -> unit) -> unit

(** [send t ~src ~dst msg] transmits one message. *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [broadcast t ~src msg] delivers to every node, including [src]
    itself (self-delivery skips NIC and wire but pays CPU; it is also
    immune to loss windows and partitions). Under [All_to_all] the
    origin sends n point-to-point copies; under [Gossip] the message
    floods the overlay with relay-and-dedup (see {!dissemination}). *)
val broadcast : 'msg t -> src:int -> 'msg -> unit

(** [crash t id] makes node [id] silently drop everything from now on
    (fail-stop). Everything in flight towards or queued on the node —
    wire deliveries, pending CPU work, NIC transmissions — is
    tombstoned and will not execute even if the node later recovers. *)
val crash : 'msg t -> int -> unit

(** [recover t id] undoes {!crash}: the node resumes sending and
    receiving with its registered handler intact, and its [on_recover]
    hook (if any) runs. Messages tombstoned by the crash stay lost. *)
val recover : 'msg t -> int -> unit

(** [on_recover t ~id hook] runs [hook] whenever node [id] recovers
    (protocols use it to restart timers / re-enter the pipeline). *)
val on_recover : 'msg t -> id:int -> (unit -> unit) -> unit

val is_crashed : 'msg t -> int -> bool

val engine : 'msg t -> Engine.t

val n : 'msg t -> int

(** CPU of a node, for utilization reports. *)
val cpu : 'msg t -> int -> Cpu.t

(** Egress NIC of a node (service times are transmission times). *)
val nic : 'msg t -> int -> Cpu.t

(** The trace installed at creation, if any — protocols record their
    {!Trace.Phase} milestones into the same sink. *)
val trace_sink : 'msg t -> Trace.t option

(** Total messages handed to the transport so far. *)
val messages_sent : 'msg t -> int

(** Messages delivered (handler executed). *)
val messages_delivered : 'msg t -> int

(** Total bytes offered to the transport. *)
val bytes_sent : 'msg t -> int

(** Messages dropped by the fault plan (loss windows + partitions). *)
val messages_dropped : 'msg t -> int

(** Extra copies injected by duplication windows. *)
val messages_duplicated : 'msg t -> int

(** Gossip copies discarded by the receiver's dedup (0 under
    [All_to_all]). *)
val messages_suppressed : 'msg t -> int

(** Messages an eclipse cut at wire entry (counted into
    {!messages_dropped} as well). *)
val messages_eclipsed : 'msg t -> int

(** Gossip relay copies that died to a crash tombstone at delivery —
    the receiver crashed (or crashed and recovered) after the copy
    entered the wire. *)
val relay_suppressed_crash : 'msg t -> int

(** Gossip relay copies a partition cut at wire entry. *)
val relay_suppressed_partition : 'msg t -> int

(** Gossip relay copies an eclipse cut at wire entry — when this
    accounts for every relay link into a victim, the victim is starved
    (see the gossip-reachability tests). *)
val relay_suppressed_eclipse : 'msg t -> int

(** The dissemination mode the network was created with. *)
val dissemination : 'msg t -> dissemination

(** [neighbors t i] is node [i]'s overlay neighbor set, ascending
    (empty under [All_to_all]). *)
val neighbors : 'msg t -> int -> int list
