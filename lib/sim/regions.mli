(** Geographic regions and their one-way network latencies.

    The paper's evaluation (§VI-A) spreads servers evenly across three
    AWS data centres — Oregon, Ireland, Sydney. Tokyo and Singapore are
    included for the Fig. 1 front-running scenario, and the Tokyo →
    Sydney path is deliberately given the real-world routing detour
    (via the US west coast) that creates the triangle-inequality
    violation the attack exploits:
    one_way(Tokyo, Singapore) + one_way(Singapore, Sydney)
    < one_way(Tokyo, Sydney). *)

type t = Oregon | Ireland | Sydney | Tokyo | Singapore

val all : t list

val name : t -> string

val equal : t -> t -> bool

(** One-way latency in microseconds between two regions (intra-region
    for equal arguments). Calibrated from published AWS inter-region
    RTT measurements. *)
val one_way_us : t -> t -> int

(** [paper_placement n] assigns [n] nodes round-robin across the
    paper's three regions (Oregon, Ireland, Sydney). *)
val paper_placement : int -> t array

(** [violates_triangle ~src ~via ~dst] holds when relaying through
    [via] beats the direct path. *)
val violates_triangle : src:t -> via:t -> dst:t -> bool
