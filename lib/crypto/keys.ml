type keypair = { id : int; sk : int; pk : Field.t }

type directory = Field.t array

let group_order = Field.p - 1

let generate rng ~id =
  let rec draw () =
    let sk = Rng.int rng group_order in
    if sk = 0 then draw () else sk
  in
  let sk = draw () in
  { id; sk; pk = Field.pow Field.g sk }

let setup rng n =
  let pairs = Array.init n (fun id -> generate rng ~id) in
  (pairs, Array.map (fun kp -> kp.pk) pairs)

let public_key dir i = dir.(i)

let size = Array.length
