type loss_window = {
  l_from_us : int;
  l_until_us : int;
  l_src : int option;
  l_dst : int option;
  l_drop_p : float;
  l_dup_p : float;
}

type partition = { p_from_us : int; p_heal_us : int; p_island : int list }

type crash = { c_node : int; c_at_us : int; c_recover_us : int option }

type plan = {
  losses : loss_window list;
  partitions : partition list;
  crashes : crash list;
  skews_us : (int * int) list;
}

let none = { losses = []; partitions = []; crashes = []; skews_us = [] }

let is_none p =
  match (p.losses, p.partitions, p.crashes, p.skews_us) with
  | [], [], [], [] -> true
  | _ -> false

(* Elements are appended so a plan reads top-to-bottom in the order it
   was built; queries don't depend on the order. *)
let loss ?src ?dst ?(dup_p = 0.0) ~from_us ~until_us ~drop_p plan =
  let w =
    {
      l_from_us = from_us;
      l_until_us = until_us;
      l_src = src;
      l_dst = dst;
      l_drop_p = drop_p;
      l_dup_p = dup_p;
    }
  in
  { plan with losses = plan.losses @ [ w ] }

let partition ~from_us ~heal_us ~island plan =
  let p = { p_from_us = from_us; p_heal_us = heal_us; p_island = island } in
  { plan with partitions = plan.partitions @ [ p ] }

let crash ?recover_us ~node ~at_us plan =
  let c = { c_node = node; c_at_us = at_us; c_recover_us = recover_us } in
  { plan with crashes = plan.crashes @ [ c ] }

let skew ~node ~skew_us plan =
  { plan with skews_us = plan.skews_us @ [ (node, skew_us) ] }

let island_of_regions ~n regions =
  let placement = Regions.paper_placement n in
  List.filter
    (fun i -> List.exists (fun r -> Regions.equal r placement.(i)) regions)
    (List.init n (fun i -> i))

let validate plan ~n =
  let node ctx id =
    if id < 0 || id >= n then
      invalid_arg (Printf.sprintf "Faults.validate: %s node %d out of [0,%d)" ctx id n)
  in
  let prob ctx p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Faults.validate: %s probability %g outside [0,1]" ctx p)
  in
  let window ctx from_us until_us =
    if until_us <= from_us then
      invalid_arg
        (Printf.sprintf "Faults.validate: %s window [%d,%d) is empty" ctx from_us until_us)
  in
  List.iter
    (fun w ->
      window "loss" w.l_from_us w.l_until_us;
      prob "drop" w.l_drop_p;
      prob "dup" w.l_dup_p;
      Option.iter (node "loss src") w.l_src;
      Option.iter (node "loss dst") w.l_dst)
    plan.losses;
  List.iter
    (fun p ->
      window "partition" p.p_from_us p.p_heal_us;
      if p.p_island = [] then invalid_arg "Faults.validate: empty partition island";
      List.iter (node "partition") p.p_island)
    plan.partitions;
  List.iter
    (fun c ->
      node "crash" c.c_node;
      if c.c_at_us < 0 then invalid_arg "Faults.validate: crash time negative";
      Option.iter
        (fun r ->
          if r <= c.c_at_us then
            invalid_arg "Faults.validate: recovery not after crash")
        c.c_recover_us)
    plan.crashes;
  List.iter (fun (id, _) -> node "skew" id) plan.skews_us

let in_window ~now ~from_us ~until_us = now >= from_us && now < until_us

let endpoint_matches filter id =
  match filter with None -> true | Some wanted -> Int.equal wanted id

(* Overlapping windows compose as independent trials: the message
   survives only if it survives every active window. *)
let drop_dup plan ~now ~src ~dst =
  List.fold_left
    (fun ((keep_d, keep_u) as acc) w ->
      if
        in_window ~now ~from_us:w.l_from_us ~until_us:w.l_until_us
        && endpoint_matches w.l_src src
        && endpoint_matches w.l_dst dst
      then (keep_d *. (1.0 -. w.l_drop_p), keep_u *. (1.0 -. w.l_dup_p))
      else acc)
    (1.0, 1.0) plan.losses
  |> fun (keep_d, keep_u) -> (1.0 -. keep_d, 1.0 -. keep_u)

let partitioned plan ~now ~src ~dst =
  List.exists
    (fun p ->
      in_window ~now ~from_us:p.p_from_us ~until_us:p.p_heal_us
      &&
      let inside id = List.exists (Int.equal id) p.p_island in
      not (Bool.equal (inside src) (inside dst)))
    plan.partitions

let skew_us plan id =
  List.fold_left
    (fun acc (node, s) -> if Int.equal node id then acc + s else acc)
    0 plan.skews_us

let active plan ~now =
  let losses =
    List.filter_map
      (fun w ->
        if in_window ~now ~from_us:w.l_from_us ~until_us:w.l_until_us then
          Some
            (Printf.sprintf "loss[%d,%d)p=%g%s" w.l_from_us w.l_until_us
               w.l_drop_p
               (if w.l_dup_p > 0.0 then Printf.sprintf " dup=%g" w.l_dup_p
                else ""))
        else None)
      plan.losses
  in
  let partitions =
    List.filter_map
      (fun p ->
        if in_window ~now ~from_us:p.p_from_us ~until_us:p.p_heal_us then
          Some
            (Printf.sprintf "partition[%d,%d){%s}" p.p_from_us p.p_heal_us
               (String.concat "," (List.map string_of_int p.p_island)))
        else None)
      plan.partitions
  in
  let crashes =
    List.filter_map
      (fun c ->
        let live =
          now >= c.c_at_us
          && match c.c_recover_us with None -> true | Some r -> now < r
        in
        if live then
          Some
            (match c.c_recover_us with
            | None -> Printf.sprintf "crash(n%d@%d)" c.c_node c.c_at_us
            | Some r -> Printf.sprintf "crash(n%d@%d..%d)" c.c_node c.c_at_us r)
        else None)
      plan.crashes
  in
  losses @ partitions @ crashes
