type t = {
  mutable x : int;
  mutable y : int;
  positions : (string, int ref * int ref) Hashtbl.t;  (** net x, net y *)
  mutable swaps : int;
}

type direction = X_to_y | Y_to_x

type swap = { trader : string; dir : direction; amount_in : int }

let create ~reserve_x ~reserve_y =
  if reserve_x <= 0 || reserve_y <= 0 then
    invalid_arg "Amm.create: reserves must be positive";
  { x = reserve_x; y = reserve_y; positions = Hashtbl.create 16; swaps = 0 }

let parse s =
  match String.split_on_char ' ' s with
  | [ "swap"; trader; "x2y"; amount ] -> (
      match int_of_string_opt amount with
      | Some amount_in -> Some { trader; dir = X_to_y; amount_in }
      | None -> None)
  | [ "swap"; trader; "y2x"; amount ] -> (
      match int_of_string_opt amount with
      | Some amount_in -> Some { trader; dir = Y_to_x; amount_in }
      | None -> None)
  | _ -> None

let encode { trader; dir; amount_in } =
  Printf.sprintf "swap %s %s %d" trader
    (match dir with X_to_y -> "x2y" | Y_to_x -> "y2x")
    amount_in

(* Uniswap-v2 style output with a 0.3% fee. *)
let out_amount ~r_in ~r_out amount_in =
  let amount_fee = amount_in * 997 in
  amount_fee * r_out / ((r_in * 1000) + amount_fee)

let quote t dir amount_in =
  if amount_in <= 0 then 0
  else
    match dir with
    | X_to_y -> out_amount ~r_in:t.x ~r_out:t.y amount_in
    | Y_to_x -> out_amount ~r_in:t.y ~r_out:t.x amount_in

let position_refs t trader =
  match Hashtbl.find_opt t.positions trader with
  | Some p -> p
  | None ->
      let p = (ref 0, ref 0) in
      Hashtbl.replace t.positions trader p;
      p

let apply t ({ trader; dir; amount_in } : swap) =
  if amount_in <= 0 then 0
  else begin
    t.swaps <- t.swaps + 1;
    let out = quote t dir amount_in in
    let px, py = position_refs t trader in
    (match dir with
    | X_to_y ->
        t.x <- t.x + amount_in;
        t.y <- t.y - out;
        px := !px - amount_in;
        py := !py + out
    | Y_to_x ->
        t.y <- t.y + amount_in;
        t.x <- t.x - out;
        py := !py - amount_in;
        px := !px + out);
    out
  end

let apply_payload t s = Option.map (apply t) (parse s)

let reserve_x t = t.x

let reserve_y t = t.y

let price_x_micro t = t.y * 1_000_000 / t.x

let position t trader =
  match Hashtbl.find_opt t.positions trader with
  | Some (px, py) -> (!px, !py)
  | None -> (0, 0)

let swaps_applied t = t.swaps
