(* Diagnostic output. The machine-readable form is a single report
   object (not a bare findings array) built on Metrics.Json, so the CI
   artifact is schema-checked by the same machinery as the bench JSON:
   {tool, version, findings:[{rule,file,line,message,chain}],
    counts:[{rule,count} for the whole catalog], total}. *)

type format = Human | Json

let format_of_string = function
  | "human" -> Some Human
  | "json" -> Some Json
  | _ -> None

let version = 1

let schema =
  Metrics.Json.(
    Obj_of
      [
        ("tool", Str_s);
        ("version", Int_s);
        ( "findings",
          List_of
            (Obj_of
               [
                 ("rule", Str_s);
                 ("file", Str_s);
                 ("line", Int_s);
                 ("message", Str_s);
                 ("chain", List_of Str_s);
               ]) );
        ("counts", List_of (Obj_of [ ("rule", Str_s); ("count", Int_s) ]));
        ("total", Int_s);
      ])

let to_json (findings : Finding.t list) =
  let finding (f : Finding.t) =
    Metrics.Json.Obj
      [
        ("rule", Metrics.Json.Str (Rules.to_string f.rule));
        ("file", Metrics.Json.Str f.file);
        ("line", Metrics.Json.Int f.line);
        ("message", Metrics.Json.Str f.message);
        ("chain", Metrics.Json.List (List.map (fun h -> Metrics.Json.Str h) f.chain));
      ]
  in
  let count rule =
    Metrics.Json.Obj
      [
        ("rule", Metrics.Json.Str (Rules.to_string rule));
        ( "count",
          Metrics.Json.Int (List.length (List.filter (fun (f : Finding.t) -> f.rule = rule) findings))
        );
      ]
  in
  Metrics.Json.Obj
    [
      ("tool", Metrics.Json.Str "lyra_lint");
      ("version", Metrics.Json.Int version);
      ("findings", Metrics.Json.List (List.map finding findings));
      ("counts", Metrics.Json.List (List.map count Rules.all));
      ("total", Metrics.Json.Int (List.length findings));
    ]

let print_human out (findings : Finding.t list) =
  List.iter
    (fun (f : Finding.t) ->
      Printf.fprintf out "%s:%d: [%s] %s\n" f.file f.line (Rules.to_string f.rule) f.message;
      List.iteri
        (fun i hop ->
          Printf.fprintf out "    %s %s\n" (if i = 0 then "chain:" else "    ->") hop)
        f.chain)
    findings;
  match List.length findings with
  | 0 -> Printf.fprintf out "lyra_lint: no findings\n"
  | n -> Printf.fprintf out "lyra_lint: %d finding%s\n" n (if n = 1 then "" else "s")

let print format out findings =
  match format with
  | Human -> print_human out findings
  | Json -> output_string out (Metrics.Json.to_string (to_json findings))

(* Write the report, then read it back, re-parse and re-validate: the
   artifact a CI job picks up is guaranteed well-formed or the linter
   itself fails. *)
let write_json_file ~file findings =
  let doc = to_json findings in
  (match Metrics.Json.check schema doc with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "lint report does not match its own schema at %s" e));
  Out_channel.with_open_text file (fun oc -> output_string oc (Metrics.Json.to_string doc));
  let content = In_channel.with_open_text file In_channel.input_all in
  match Metrics.Json.of_string content with
  | Error e -> failwith (Printf.sprintf "re-reading %s failed: %s" file e)
  | Ok doc' -> (
      match Metrics.Json.check schema doc' with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "re-read %s violates the report schema at %s" file e))
