(** Byzantine behaviours studied in §VI-D and §V-E, attached to a node
    at creation. The transport still authenticates and delivers
    faithfully — misbehaviour is entirely in what the node chooses to
    send. *)

type t =
  | Silent
      (** crash from the start: counted in n, contributes nothing *)
  | Flood of { batches_per_sec : int }
      (** spam valid-looking proposals to depress chain quality *)
  | Future_seq of { offset_us : int }
      (** request sequence numbers in the future (memory attack) *)
  | Low_status
      (** report locked = min-pending = 0 to stall prefixes (countered
          by the 2f+1-highest rule, Alg. 4 lines 83/85) *)
  | Equivocate
      (** send different proposals to different halves of the network
          (countered by VVB-Unicity) *)
  | Stale_votes of { delay_us : int }
      (** withhold votes for a while (latency pressure) *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
