(** The experiment scenario driver: wire a cluster of SMR nodes of any
    {!Protocol.NODE} onto the simulated WAN, attach client load, run
    for a simulated duration and report the measurements the paper's
    figures plot.

    Placement follows §VI-A: nodes spread evenly across Oregon,
    Ireland and Sydney. Measurement excludes the warm-up window.
    Everything is deterministic in the seed. *)

type load =
  | Closed of int  (** closed-loop clients per node (§VI-A) *)
  | Open_rate of float  (** open-loop tx/s per node (saturation sweeps) *)

type result = {
  n : int;
  protocol : string;
  window_us : int;  (** measurement window *)
  committed_txs : int;  (** transactions output within the window *)
  throughput_tps : float;
  latency_ms : Metrics.Recorder.t;  (** per-tx submit → output, origin node *)
  decide_rounds : float;  (** mean decision round (0 when not applicable) *)
  accept_rate : float;  (** accepted / decided own proposals in-window *)
  messages : int;
  bytes : int;
  prefix_safe : bool;  (** output logs are prefixes of each other *)
  late_accepts : int;  (** safety counter; must be 0 *)
  dropped_msgs : int;  (** messages the fault plan dropped *)
  dup_msgs : int;  (** extra copies the fault plan injected *)
  stall_windows : (int * int) list;
      (** in-window periods with no cluster-wide commit progress *)
  first_violation : Invariant_monitor.violation option;
      (** first continuous-monitor violation; must be [None] *)
  trace_dropped : int;  (** events evicted from the supplied trace *)
  phases : (string * Metrics.Recorder.t) list;
      (** per-phase latency breakdown (ms) of honest nodes' own
          batches within the measurement window, in pipeline order —
          the LAT3R anatomy (every protocol ends with [e2e]) *)
  profile : Sim.Profile.t option;
      (** present when [profile_bucket_us] was passed to {!run} *)
  honest_logs : (string * string) list array;
      (** per honest node, the committed log as (key, content digest)
          pairs, oldest first — the digest pins the batch's transaction
          contents so content-level divergence under one instance key
          is visible to the explorer's oracles *)
  seq_bounds : (int * int * int) list array;
      (** per honest node, the adapter's per-output (seq, low, high)
          admissibility bounds ([] for height-based protocols) *)
  honest_ids : int array;
      (** node ids of the honest nodes, ascending — the index map for
          [honest_logs] and [seq_bounds] *)
  submitted_by : int array;
      (** per node id, transactions that node's clients submitted *)
  committed_own : int array;
      (** per node id, honest commit observations of transactions that
          node originated (cluster-wide, so each tx counts once per
          observing honest replica; the censorship oracle only asks
          whether it is zero) *)
  last_commit_us : int array;
      (** per node id, the simulated time that node's own committed log
          last advanced (−1 if never) — the per-victim liveness
          oracle's stall signal *)
  workload_streams : Workload.Engine.stream_summary list;
      (** when [?workload] was attached: per-stream submitted/committed
          counts (whole run) and commit-latency summary (measurement
          window only — recorders are cleared at the window boundary);
          [] otherwise *)
  mev : Workload.Engine.mev option;
      (** when the attached workload carries an AMM market: extracted
          value and victim slippage from replaying the longest honest
          log's committed order *)
  receive_logs : (string * int) list array;
      (** per honest node (index map [honest_ids]), the batches it
          first observed as [(key, first-seen µs)] in arrival order —
          the receive-order tap behind [fairness] *)
  fairness : Fairness.report option;
      (** receive-order fairness scored against the longest honest log
          (docs/FAIRNESS.md); [None] when no honest node committed
          anything *)
}

val pp_result : Format.formatter -> result -> unit

(** Plain-text table of the phase breakdown (samples, mean, p50, p95,
    p99 per phase). *)
val phase_table : result -> string

(** [run (module P) ~n ~load ~duration_us ()] — the one generic driver:
    protocol choice is the adapter module (see {!Protocol.Registry} and
    the [?tweak]/[?byz]/[?censor] knobs on the adapter constructors).
    [warmup_us] defaults to the protocol's [default_warmup_us];
    [jitter] is the relative link jitter (default 0.01). [faults]
    executes a {!Sim.Faults} plan on the run; [adversary] attaches a
    pre-GST delay policy ({!Sim.Adversary}); an {!Invariant_monitor}
    always observes honest commits continuously, and its verdict lands
    in [first_violation]/[stall_windows]. [trace] is handed to the
    network for fault-event recording; its eviction count is surfaced
    as [trace_dropped]. [profile_bucket_us] attaches a {!Sim.Profile}
    to the run (opt-in: sampling adds engine events, though never
    changes protocol behaviour); it lands in [profile]. [perturb]
    injects deterministic extra wire delays ({!Sim.Perturb}) — the
    schedule-space explorer's lever; omitted or empty, the run is
    bit-identical to an unperturbed one. [workload] attaches an
    open-loop {!Workload.Engine} alongside [load] (use
    [load = Closed 0] for workload-only runs): its streams start with
    the per-node clients, spread arrivals over honest entry points,
    and report through [workload_streams]/[mev]. *)
val run :
  ?seed:int64 ->
  ?warmup_us:int ->
  ?jitter:float ->
  ?ns_per_byte:int ->
  ?faults:Sim.Faults.plan ->
  ?adversary:Sim.Adversary.t ->
  ?perturb:Sim.Perturb.t ->
  ?trace:Sim.Trace.t ->
  ?dissemination:Sim.Network.dissemination ->
  ?profile_bucket_us:int ->
  ?workload:Workload.Engine.spec ->
  (module Protocol.NODE) ->
  n:int ->
  load:load ->
  duration_us:int ->
  unit ->
  result

(** Effective WAN line rate used by the experiments (ns per byte;
    ≈ 200 Mb/s per node, a realistic cross-continent TCP ceiling). *)
val wan_ns_per_byte : int
