(* Amortized signature verification.

   Protocol nodes see the same signature many times: a quorum
   certificate carries 2f+1 shares and is relayed to all n nodes, a
   proposal signature rides every retransmission. The cache
   deduplicates by the full verification input (pubkey, msg, sig), so
   each distinct triple costs one [Schnorr.verify] per node for the
   lifetime of the node instead of one per arrival.

   The cache is an explicit value threaded through each node (never a
   module-global), so concurrent simulated nodes stay independent and
   a seeded run is reproducible: lookups consume no randomness and the
   table is never traversed, only probed. Verification results are
   pure, so memoization is observationally equivalent to direct
   verification — pinned by a QCheck property in test_crypto.ml. *)

type t = {
  table : (string, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 256; hits = 0; misses = 0 }

let hits t = t.hits

let misses t = t.misses

(* Keys are length-prefixed so (pk, msg, sig) triples never collide
   across field boundaries. *)
let key ~pk msg (sg : Schnorr.signature) =
  let sigs = Schnorr.to_string sg in
  Printf.sprintf "%d|%d:%s%s" (Field.to_int pk) (String.length msg) msg sigs

let verify t ~pk msg sg =
  let k = key ~pk msg sg in
  match Hashtbl.find_opt t.table k with
  | Some ok ->
      t.hits <- t.hits + 1;
      ok
  | None ->
      t.misses <- t.misses + 1;
      let ok = Schnorr.verify ~pk msg sg in
      Hashtbl.replace t.table k ok;
      ok

let verify_by t ~dir ~signer msg sg =
  verify t ~pk:(Keys.public_key dir signer) msg sg

let share_verify t ~dir msg (sh : Threshold.share) =
  verify_by t ~dir ~signer:sh.signer msg sh.sigma

(* Batch entry point for quorum certificates: same acceptance predicate
   as [Threshold.verify_combined] (>= threshold distinct signers, every
   distinct share valid), with each share going through the cache. A
   certificate assembled from shares this node already verified one by
   one costs no crypto at all. *)
let verify_combined t ~dir ~threshold msg (c : Threshold.combined) =
  let distinct =
    Array.to_list c.shares
    |> List.sort_uniq (fun (a : Threshold.share) b ->
           Int.compare a.signer b.signer)
  in
  List.length distinct >= threshold
  && List.for_all (share_verify t ~dir msg) distinct
