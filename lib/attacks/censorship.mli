(** Byzantine-leader censorship (§I, §V-E).

    In leader-based protocols a Byzantine leader can omit transactions
    from the blocks it proposes; the victim's transaction is only
    included once an honest leader rotates in — "although the
    underlying DAG may resubmit a transaction t later, t has
    effectively been reordered" (§I, on Fino). Lyra is leaderless:
    every process runs its own BOC instances, so no single process can
    delay another's transaction; at most f Byzantine validators can
    vote 0, which a 2f+1 quorum absorbs.

    The experiment measures a victim transaction's commit latency under
    Pompē with f censoring replicas versus Lyra with f Byzantine
    (vote-withholding) replicas. *)

(** Victim-transaction latency and how many victim transactions were
    *reordered* — executed after a transaction with a higher decided
    sequence number. *)
type measurement = { mean_ms : float; worst_ms : float; reordered : int }

type outcome = {
  n : int;
  byzantine : int;
  pompe_rows : (string * measurement) list;
      (** censoring-coalition sweep: 0, f, and n−1 censoring leaders.
          Round-robin rotation bounds the damage of a small coalition
          (the victim waits at most for the next honest leader), but
          the delay grows with the coalition and is unbounded for a
          fixed Byzantine leader — the §I observation about
          leader-based protocols. *)
  lyra_rows : (string * measurement) list;  (** 0 and f Byzantine nodes *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run : ?seed:int64 -> n:int -> unit -> outcome
