(* Schedule perturbations are pure data, like fault plans: the engine
   seed fixes the unperturbed schedule, and a perturbation deterministically
   maps each wire message to an extra delay. No randomness lives here —
   the explorer draws its ops from its own RNG *outside* the run — so a
   perturbed run replays bit-for-bit and the empty perturbation leaves
   the event schedule untouched (not even an RNG split). *)

type op =
  | Delay_nth of { nth : int; extra_us : int }
  | Delay_window of {
      from_us : int;
      until_us : int;
      src : int option;
      dst : int option;
      extra_us : int;
    }
  | Reverse_window of {
      from_us : int;
      until_us : int;
      src : int option;
      dst : int option;
    }

type t = op list

let none = []

let is_none t = match t with [] -> true | _ :: _ -> false

let in_window ~now ~from_us ~until_us = now >= from_us && now < until_us

let endpoint_matches filter id =
  match filter with None -> true | Some wanted -> Int.equal wanted id

let extra_us t ~now ~src ~dst ~nth =
  List.fold_left
    (fun acc opn ->
      acc
      +
      match opn with
      | Delay_nth d -> if Int.equal d.nth nth then d.extra_us else 0
      | Delay_window w ->
          if
            in_window ~now ~from_us:w.from_us ~until_us:w.until_us
            && endpoint_matches w.src src && endpoint_matches w.dst dst
          then w.extra_us
          else 0
      | Reverse_window w ->
          (* Earlier messages in the window wait longer than later ones
             (2x the remaining window), which tends to flip their
             arrival order — a deterministic reordering knob that needs
             no per-message state. *)
          if
            in_window ~now ~from_us:w.from_us ~until_us:w.until_us
            && endpoint_matches w.src src && endpoint_matches w.dst dst
          then 2 * (w.until_us - now)
          else 0)
    0 t

let validate t ~n =
  let node ctx id =
    if id < 0 || id >= n then
      invalid_arg
        (Printf.sprintf "Perturb.validate: %s node %d out of [0,%d)" ctx id n)
  in
  let window ctx from_us until_us =
    if until_us <= from_us then
      invalid_arg
        (Printf.sprintf "Perturb.validate: %s window [%d,%d) is empty" ctx
           from_us until_us)
  in
  let extra ctx e =
    if e < 0 then
      invalid_arg (Printf.sprintf "Perturb.validate: %s delay %d negative" ctx e)
  in
  List.iter
    (fun opn ->
      match opn with
      | Delay_nth d ->
          if d.nth < 0 then invalid_arg "Perturb.validate: nth negative";
          extra "delay-nth" d.extra_us
      | Delay_window w ->
          window "delay" w.from_us w.until_us;
          extra "delay" w.extra_us;
          Option.iter (node "delay src") w.src;
          Option.iter (node "delay dst") w.dst
      | Reverse_window w ->
          window "reverse" w.from_us w.until_us;
          Option.iter (node "reverse src") w.src;
          Option.iter (node "reverse dst") w.dst)
    t

let endpoint_to_string = function None -> "*" | Some id -> string_of_int id

let op_to_string = function
  | Delay_nth d -> Printf.sprintf "delay-nth(%d,+%dus)" d.nth d.extra_us
  | Delay_window w ->
      Printf.sprintf "delay[%d,%d)%s->%s(+%dus)" w.from_us w.until_us
        (endpoint_to_string w.src) (endpoint_to_string w.dst) w.extra_us
  | Reverse_window w ->
      Printf.sprintf "reverse[%d,%d)%s->%s" w.from_us w.until_us
        (endpoint_to_string w.src) (endpoint_to_string w.dst)

let to_string t = String.concat "; " (List.map op_to_string t)

let op_equal a b =
  match (a, b) with
  | Delay_nth x, Delay_nth y -> Int.equal x.nth y.nth && Int.equal x.extra_us y.extra_us
  | Delay_window x, Delay_window y ->
      Int.equal x.from_us y.from_us
      && Int.equal x.until_us y.until_us
      && Option.equal Int.equal x.src y.src
      && Option.equal Int.equal x.dst y.dst
      && Int.equal x.extra_us y.extra_us
  | Reverse_window x, Reverse_window y ->
      Int.equal x.from_us y.from_us
      && Int.equal x.until_us y.until_us
      && Option.equal Int.equal x.src y.src
      && Option.equal Int.equal x.dst y.dst
  | (Delay_nth _ | Delay_window _ | Reverse_window _), _ -> false

let equal a b = List.equal op_equal a b
