(** Per-node CPU: a FIFO server with explicit service times.

    Each simulated process owns one CPU. Message handling is submitted
    as a job with a service time from the {!Costs} table; jobs queue
    behind each other, so an overloaded node (e.g. a HotStuff leader)
    develops real queueing delay — the mechanism behind the Fig. 3
    saturation behaviour. *)

type t

(** [create ?cores engine] — [cores] (default 1) divides service times,
    approximating a multi-core node as a single proportionally faster
    server (reasonable at the utilizations the experiments run at). *)
val create : ?cores:int -> Engine.t -> t

(** [submit t ~service_us f] runs [f] once the CPU has spent
    [service_us] of (queued) service on the job. *)
val submit : t -> service_us:int -> (unit -> unit) -> unit

(** Cumulative busy time (µs), for utilization reports. *)
val busy_us : t -> int

(** [utilization t ~over_us] is busy time divided by the window. *)
val utilization : t -> over_us:int -> float

(** Current backlog: when the CPU would start a job submitted now,
    relative to the present (0 = idle). *)
val backlog_us : t -> int
