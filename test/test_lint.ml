(* Tests for the lyra_lint static-analysis pass: each rule has at
   least one firing and one non-firing fixture, the allowlisting
   mechanisms work, and the allowlist shipped in the repo parses. *)

let render (f : Lint.Scanner.finding) =
  Printf.sprintf "%s:%d:%s" f.file f.line (Lint.Rules.to_string f.rule)

(* [check msg expected path src] lints [src] as if it lived at [path]
   and compares the findings (as "file:line:RULE") against [expected]. *)
let check ?(rules = Lint.Rules.all) msg expected path src =
  let got = List.map render (Lint.Scanner.scan_source ~rules ~path src) in
  Alcotest.(check (list string)) msg expected got

(* ------------------------------------------------------------------ *)
(* D001: unordered Hashtbl traversal in deterministic code.            *)
(* ------------------------------------------------------------------ *)

let d001_bad = "let f tbl =\n  Hashtbl.iter (fun _ _ -> ()) tbl\n"

let test_d001_fires () =
  check "iter in lib/lyra" [ "lib/lyra/fix.ml:2:D001" ] "lib/lyra/fix.ml" d001_bad;
  check "fold in lib/sim"
    [ "lib/sim/fix.ml:1:D001" ]
    "lib/sim/fix.ml" "let n tbl = Hashtbl.fold (fun _ _ a -> a + 1) tbl 0\n";
  check "to_seq in lib/dbft"
    [ "lib/dbft/fix.ml:1:D001" ]
    "lib/dbft/fix.ml" "let s tbl = Hashtbl.to_seq tbl\n"

let test_d001_scoped () =
  (* same pattern outside the deterministic dirs is legal *)
  check "iter in lib/metrics" [] "lib/metrics/fix.ml" d001_bad;
  check "iter in test/" [] "test/fix.ml" d001_bad;
  (* point lookups and mutation are always fine *)
  check "replace/find in lib/lyra" [] "lib/lyra/fix.ml"
    "let f tbl = Hashtbl.replace tbl 1 2; Hashtbl.find_opt tbl 1\n"

let test_d001_inline_allow () =
  check "allow on previous line" [] "lib/lyra/fix.ml"
    "let f tbl =\n  (* lint: allow D001 *)\n  Hashtbl.iter (fun _ _ -> ()) tbl\n";
  check "allow trailing on same line" [] "lib/lyra/fix.ml"
    "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl (* lint: allow D001 *)\n";
  check "allow two lines above does not reach"
    [ "lib/lyra/fix.ml:4:D001" ]
    "lib/lyra/fix.ml"
    "let f tbl =\n  (* lint: allow D001 *)\n  ignore tbl;\n  Hashtbl.iter (fun _ _ -> ()) tbl\n";
  check "allow for a different rule does not apply"
    [ "lib/lyra/fix.ml:2:D001" ]
    "lib/lyra/fix.ml"
    "let f tbl =\n  Hashtbl.iter (fun _ _ -> ()) tbl (* lint: allow D002 *)\n"

(* ------------------------------------------------------------------ *)
(* D002: wall clock / ambient entropy.                                 *)
(* ------------------------------------------------------------------ *)

let test_d002_fires () =
  check "gettimeofday in bench" [ "bench/fix.ml:1:D002" ] "bench/fix.ml"
    "let t = Unix.gettimeofday ()\n";
  check "Sys.time in examples" [ "examples/fix.ml:1:D002" ] "examples/fix.ml"
    "let t = Sys.time ()\n";
  check "self_init in test" [ "test/fix.ml:1:D002" ] "test/fix.ml"
    "let () = Random.self_init ()\n";
  check "Random.int in lib" [ "lib/workload/fix.ml:1:D002" ] "lib/workload/fix.ml"
    "let r = Random.int 10\n"

let test_d002_exemptions () =
  (* the house generator may use Random internally *)
  check "Random.int inside lib/crypto/rng.ml" [] "lib/crypto/rng.ml"
    "let r = Random.int 10\n";
  (* explicitly seeded state is deterministic, hence legal *)
  check "Random.State is legal" [] "lib/lyra/fix.ml"
    "let r st = Random.State.int st 10\n";
  (* unrelated Unix/Sys calls are not time sources *)
  check "Sys.file_exists is legal" [] "lib/lyra/fix.ml"
    "let e = Sys.file_exists \"x\"\n"

(* ------------------------------------------------------------------ *)
(* D003: polymorphic structural compare / hash.                        *)
(* ------------------------------------------------------------------ *)

let test_d003_fires () =
  check "bare compare in lib"
    [ "lib/metrics/fix.ml:1:D003" ]
    "lib/metrics/fix.ml" "let sort xs = List.sort compare xs\n";
  check "Stdlib.compare in lib"
    [ "lib/lyra/fix.ml:1:D003" ]
    "lib/lyra/fix.ml" "let c a b = Stdlib.compare a b\n";
  check "Stdlib.(=) in lib"
    [ "lib/lyra/fix.ml:1:D003" ]
    "lib/lyra/fix.ml" "let eq a b = Stdlib.( = ) a b\n";
  check "Hashtbl.hash in lib"
    [ "lib/sim/fix.ml:1:D003" ]
    "lib/sim/fix.ml" "let h x = Hashtbl.hash x\n";
  (* bare = / <> between two variables in deterministic protocol code *)
  check "bare = on variables in lib/lyra"
    [ "lib/lyra/fix.ml:1:D003" ]
    "lib/lyra/fix.ml" "let f a b = a = b\n";
  check "bare <> on fields in lib/protocol"
    [ "lib/protocol/fix.ml:1:D003" ]
    "lib/protocol/fix.ml" "let f a b = a.Lyra.Types.proposer <> b\n"

let test_d003_silent () =
  check "qualified Int.compare" [] "lib/lyra/fix.ml"
    "let sort xs = List.sort Int.compare xs\n";
  (* a module defining its own compare may use the name unqualified *)
  check "locally defined compare" [] "lib/crypto/fix.ml"
    "let compare = Int.compare\nlet sort xs = List.sort compare xs\n";
  (* outside lib/ the polymorphic fallback is tolerated *)
  check "bare compare in bench" [] "bench/fix.ml"
    "let sort xs = List.sort compare xs\n";
  (* comparisons against syntactic immediates stay legal *)
  check "bare = against a literal is legal" [] "lib/lyra/fix.ml" "let f x = x = 3\n";
  check "bare = against None is legal" [] "lib/lyra/fix.ml"
    "let f x = x = None\n";
  check "bare <> against [] is legal" [] "lib/lyra/fix.ml"
    "let f x = x <> []\n";
  (* and outside the deterministic dirs bare = is not D003's business *)
  check "bare = on variables in lib/metrics is legal" [] "lib/metrics/fix.ml"
    "let f a b = a = b\n";
  check "bare = on variables in bench is legal" [] "bench/fix.ml"
    "let f a b = a = b\n"

(* ------------------------------------------------------------------ *)
(* S001: Obj escape hatches.                                           *)
(* ------------------------------------------------------------------ *)

let test_s001 () =
  check "Obj.magic fires anywhere"
    [ "test/fix.ml:1:S001" ]
    "test/fix.ml" "let f x = Obj.magic x\n";
  check "Obj.repr fires in lib"
    [ "lib/app/fix.ml:1:S001" ]
    "lib/app/fix.ml" "let f x = Obj.repr x\n";
  check "plain code is silent" [] "lib/app/fix.ml" "let f x = x\n"

(* ------------------------------------------------------------------ *)
(* S003: warning suppressions in lib/.                                 *)
(* ------------------------------------------------------------------ *)

let test_s003 () =
  check "floating attribute in lib"
    [ "lib/lyra/fix.ml:1:S003" ]
    "lib/lyra/fix.ml" "[@@@warning \"-32\"]\nlet unused = 1\n";
  check "item attribute in lib"
    [ "lib/lyra/fix.ml:1:S003" ]
    "lib/lyra/fix.ml" "let f x = x [@@warning \"-27\"]\n";
  check "suppression outside lib is tolerated" [] "bin/fix.ml"
    "[@@@warning \"-32\"]\nlet unused = 1\n"

(* ------------------------------------------------------------------ *)
(* The fault layer and the invariant monitor live in deterministic     *)
(* dirs (lib/sim, lib/harness): the idioms a fault implementation is   *)
(* most tempted by — ambient randomness for drop decisions, unordered  *)
(* traversal of per-node fault state, structural equality on fault     *)
(* records — must all be caught there.                                 *)
(* ------------------------------------------------------------------ *)

let test_fault_layer_fixtures () =
  check "Random drop decision in lib/sim/faults.ml"
    [ "lib/sim/faults.ml:1:D002" ]
    "lib/sim/faults.ml" "let dropped p = Random.float 1.0 < p\n";
  check "unordered traversal of crash tombstones"
    [ "lib/sim/faults.ml:1:D001" ]
    "lib/sim/faults.ml"
    "let live tbl = Hashtbl.fold (fun _ _ a -> a + 1) tbl 0\n";
  check "structural compare on fault windows"
    [ "lib/sim/faults.ml:1:D003" ]
    "lib/sim/faults.ml" "let sort ws = List.sort compare ws\n";
  check "monitor iterating node logs unordered"
    [ "lib/harness/invariant_monitor.ml:2:D001" ]
    "lib/harness/invariant_monitor.ml"
    "let scan logs =\n  Hashtbl.iter (fun _ _ -> ()) logs\n";
  check "monitor comparing outputs structurally"
    [ "lib/harness/invariant_monitor.ml:1:D003" ]
    "lib/harness/invariant_monitor.ml" "let same a b = a = b\n";
  (* the legal versions stay silent: seeded streams, sorted traversal,
     typed comparison *)
  check "seeded rng + sorted bindings + typed compare are legal" []
    "lib/sim/faults.ml"
    "let dropped st p = Crypto.Rng.float st 1.0 < p\n\
     let live tbl = List.length (Sim.Det.sorted_bindings ~cmp:Int.compare tbl)\n\
     let sort ws = List.sort Int.compare ws\n"

(* ------------------------------------------------------------------ *)
(* Rule selection.                                                     *)
(* ------------------------------------------------------------------ *)

let test_rule_filter () =
  check ~rules:[ Lint.Rules.D002 ] "disabled rule stays quiet" [] "lib/lyra/fix.ml" d001_bad;
  check
    ~rules:[ Lint.Rules.D001 ]
    "enabled rule still fires"
    [ "lib/lyra/fix.ml:2:D001" ]
    "lib/lyra/fix.ml" d001_bad

(* ------------------------------------------------------------------ *)
(* S002 + allowlist filtering, over a real directory tree.             *)
(* ------------------------------------------------------------------ *)

let write_file path content =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content)

let test_s002_and_allowlist () =
  let root = Filename.temp_file "lyra_lint_root" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  Sys.mkdir (Filename.concat root "lib/lyra") 0o755;
  write_file (Filename.concat root "lib/lyra/bare.ml") "let x = 1\n";
  write_file (Filename.concat root "lib/lyra/sealed.ml") "let y = 2\n";
  write_file (Filename.concat root "lib/lyra/sealed.mli") "val y : int\n";
  let scan allowlist =
    List.map render
      (Lint.Scanner.scan_root ~rules:Lint.Rules.all ~allowlist ~root)
  in
  Alcotest.(check (list string))
    "module without mli fires, sealed one does not"
    [ "lib/lyra/bare.ml:1:S002" ] (scan []);
  let allowlist =
    match Lint.Config.parse "S002 lib/lyra/bare.ml\n" with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "allowlist entry suppresses it" [] (scan allowlist);
  List.iter
    (fun f -> Sys.remove (Filename.concat root f))
    [ "lib/lyra/bare.ml"; "lib/lyra/sealed.ml"; "lib/lyra/sealed.mli" ];
  List.iter (fun d -> Sys.rmdir (Filename.concat root d)) [ "lib/lyra"; "lib" ];
  Sys.rmdir root

(* ------------------------------------------------------------------ *)
(* Allowlist parsing.                                                  *)
(* ------------------------------------------------------------------ *)

let test_allow_parsing () =
  let parsed =
    Lint.Config.parse
      "# comment\n\nD001 lib/sim/det.ml   # trailing comment\nS002 lib/crypto/field_intf.ml\nD002 bench/main.ml:461\n"
  in
  (match parsed with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check int) "three entries" 3 (List.length entries);
      Alcotest.(check bool) "file-wide entry matches any line" true
        (Lint.Config.allows entries ~rule:Lint.Rules.D001 ~path:"lib/sim/det.ml" ~line:99);
      Alcotest.(check bool) "line entry matches its line" true
        (Lint.Config.allows entries ~rule:Lint.Rules.D002 ~path:"bench/main.ml" ~line:461);
      Alcotest.(check bool) "line entry rejects other lines" false
        (Lint.Config.allows entries ~rule:Lint.Rules.D002 ~path:"bench/main.ml" ~line:462);
      Alcotest.(check bool) "other path rejected" false
        (Lint.Config.allows entries ~rule:Lint.Rules.D001 ~path:"lib/sim/engine.ml" ~line:99));
  (match Lint.Config.parse "D9XY lib/sim/det.ml\n" with
  | Ok _ -> Alcotest.fail "unknown rule id must be rejected"
  | Error _ -> ());
  match Lint.Config.parse "D001 lib/sim/det.ml:zero\n" with
  | Ok _ -> Alcotest.fail "bad line number must be rejected"
  | Error _ -> ()

let shipped_allow_candidates =
  [ "lint.allow"; "../lint.allow"; "../../lint.allow"; "../../../lint.allow" ]

let test_shipped_allowlist_parses () =
  match List.find_opt Sys.file_exists shipped_allow_candidates with
  | None -> Alcotest.fail "could not locate the repo's lint.allow from the test cwd"
  | Some path -> (
      match Lint.Config.load path with
      | Error e -> Alcotest.fail e
      | Ok entries ->
          Alcotest.(check bool) "shipped allowlist is non-empty" true (entries <> []))

let suite =
  [
    Alcotest.test_case "D001 fires" `Quick test_d001_fires;
    Alcotest.test_case "D001 scoped" `Quick test_d001_scoped;
    Alcotest.test_case "D001 inline allow" `Quick test_d001_inline_allow;
    Alcotest.test_case "D002 fires" `Quick test_d002_fires;
    Alcotest.test_case "D002 exemptions" `Quick test_d002_exemptions;
    Alcotest.test_case "D003 fires" `Quick test_d003_fires;
    Alcotest.test_case "D003 silent" `Quick test_d003_silent;
    Alcotest.test_case "S001 Obj" `Quick test_s001;
    Alcotest.test_case "S003 warnings" `Quick test_s003;
    Alcotest.test_case "fault-layer fixtures" `Quick test_fault_layer_fixtures;
    Alcotest.test_case "rule filter" `Quick test_rule_filter;
    Alcotest.test_case "S002 + allowlist" `Quick test_s002_and_allowlist;
    Alcotest.test_case "allowlist parsing" `Quick test_allow_parsing;
    Alcotest.test_case "shipped allowlist parses" `Quick test_shipped_allowlist_parses;
  ]
