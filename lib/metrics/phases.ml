(* A fixed, ordered set of named phase-latency recorders.

   Protocol nodes stamp per-transaction milestones (propose, deliver,
   decide, ...) and record the span between two milestones into the
   recorder for that phase label. The label set is fixed at creation so
   every node of a protocol reports the same phases in the same order,
   which lets the harness aggregate across nodes by position as well as
   by name. *)

type t = { labels : string array; recs : Recorder.t array }

let create labels =
  let labels = Array.of_list labels in
  if Array.length labels = 0 then invalid_arg "Phases.create: no labels";
  { labels; recs = Array.map (fun _ -> Recorder.create ()) labels }

let index t label =
  let n = Array.length t.labels in
  let rec go i =
    if i >= n then invalid_arg ("Phases: unknown label " ^ label)
    else if String.equal t.labels.(i) label then i
    else go (i + 1)
  in
  go 0

let record t label v = Recorder.record t.recs.(index t label) v

(* Spans are stamped in engine µs but recorded in ms, matching every
   other latency recorder in the repo. *)
let record_span_us t label ~from_us ~until_us =
  record t label (float_of_int (until_us - from_us) /. 1000.0)

let recorder t label = t.recs.(index t label)

let labels t = Array.to_list t.labels

let pairs t =
  Array.to_list (Array.mapi (fun i l -> (l, t.recs.(i))) t.labels)
