(** Plain chained-HotStuff state-machine replication — the paper's
    "ordering phase removed" reference point (§VI).

    Clients submit to any replica; replicas gossip transaction batches
    to fill every mempool, and the round-robin HotStuff leader orders
    whatever it has pending. There is no separate ordering phase: no
    Pompē timestamp quorum, no Lyra leaderless agreement — the final
    order is whatever the current leader says, which is exactly what
    makes this baseline trivially reorderable (Fig. 1). *)

type config = {
  n : int;
  delta_us : int;  (** HotStuff view timer *)
  batch_size : int;  (** txs per gossiped batch *)
  batch_timeout_us : int;  (** flush a partial batch after this long *)
  block_capacity : int;  (** batches per HotStuff block *)
  tx_size : int;  (** client payload bytes *)
}

val default_config : n:int -> config

(** One committed batch: [seq] is the position in this replica's output
    log (contiguous from 0), [output_at] the simulated commit time. *)
type output = { batch : Lyra.Types.batch; seq : int; output_at : int }

type msg

(** Wire size in bytes, for {!Sim.Network.create}'s [size]. *)
val msg_size : msg -> int

(** CPU service time (µs) to process one message, for [cost]. *)
val msg_cost : Sim.Costs.t -> msg -> int

type t

(** [create config net ~id ?on_observe ?on_output ?censor ()] builds a
    replica and registers it on [net]. [on_observe] fires for every
    gossiped batch (the MEV observation point); [censor iid] makes this
    replica drop the batch instead of queuing it for its own blocks. *)
val create :
  config ->
  msg Sim.Network.t ->
  id:int ->
  ?on_observe:(Lyra.Types.batch -> unit) ->
  ?on_output:(output -> unit) ->
  ?censor:(Lyra.Types.iid -> bool) ->
  unit ->
  t

val id : t -> int

(** Launch the HotStuff replica (every node must be started). *)
val start : t -> unit

(** [submit t ~payload] accepts one client transaction into the local
    mempool and returns its id. *)
val submit : t -> payload:string -> string

(** Committed batches in commit order. *)
val output_log : t -> output list

(** Height of the highest committed HotStuff block. *)
val committed_height : t -> int

(** Batches proposed by this replica that have committed. *)
val own_committed : t -> int

(** Transactions waiting to be batched. *)
val mempool_size : t -> int

(** Per-phase latency breakdown of this replica's own batches (ms).
    HotStuff's pipeline is a single phase: [consensus] (Gossip →
    3-chain commit) equals [e2e]; both labels are reported so
    cross-protocol tables share the [e2e] column. *)
val phases : t -> Metrics.Phases.t
