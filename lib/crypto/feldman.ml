module Sharing = Shamir.Make (Group.Scalar)

type commitments = Group.element array

let deal rng ~secret ~threshold ~n =
  let shares, poly = Sharing.share rng ~secret ~threshold ~n in
  (shares, Array.map Group.commit poly)

let verify_share comms ({ x; y } : Sharing.share) =
  (* g^y = ∏_j C_j^{x^j}; the exponent x^j is folded incrementally. *)
  let expected = Group.commit y in
  let acc = ref Group.one in
  let xj = ref Group.Scalar.one in
  Array.iter
    (fun c ->
      acc := Group.mul !acc (Group.pow c !xj);
      xj := Group.Scalar.mul !xj x)
    comms;
  Group.equal expected !acc

let secret_commitment comms = comms.(0)

let threshold = Array.length
