(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used as the collision-resistant hash assumed by the paper (§II-B):
    message digests for signatures, Merkle trees, hash commitments, and
    the keystream of the VSS payload cipher. Verified against the FIPS
    test vectors in the test suite. *)

(** [digest s] is the raw 32-byte digest of [s]. *)
val digest : string -> string

(** [digest_list parts] hashes the concatenation of [parts] without
    building it. *)
val digest_list : string list -> string

(** [hex s] is the lowercase hex digest of [s]. *)
val hex : string -> string

(** [to_hex raw] renders a raw digest (or any string) as lowercase hex. *)
val to_hex : string -> string

(** [hkdf_expand ~key ~info n] derives [n] pseudo-random bytes from
    [key] and [info] by counter-mode hashing. Used as the VSS payload
    keystream. *)
val hkdf_expand : key:string -> info:string -> int -> string

(** Incremental interface. *)
type ctx

val init : unit -> ctx

val update : ctx -> string -> unit

(** [final ctx] returns the digest; the context must not be reused. *)
val final : ctx -> string
