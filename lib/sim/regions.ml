type t = Oregon | Ireland | Sydney | Tokyo | Singapore

let all = [ Oregon; Ireland; Sydney; Tokyo; Singapore ]

let name = function
  | Oregon -> "us-west-2"
  | Ireland -> "eu-west-1"
  | Sydney -> "ap-southeast-2"
  | Tokyo -> "ap-northeast-1"
  | Singapore -> "ap-southeast-1"

let tag = function Oregon -> 0 | Ireland -> 1 | Sydney -> 2 | Tokyo -> 3 | Singapore -> 4

let equal a b = Int.equal (tag a) (tag b)

let intra_us = 300

(* One-way latencies (µs), roughly half of the published AWS
   inter-region RTTs. Tokyo → Sydney carries a trans-Pacific routing
   detour so that Tokyo → Singapore → Sydney is faster than the direct
   path, reproducing the Fig. 1 triangle-inequality violation. *)
let one_way_us a b =
  if equal a b then intra_us
  else
    match (a, b) with
    | Oregon, Ireland | Ireland, Oregon -> 62_000
    | Oregon, Sydney | Sydney, Oregon -> 69_000
    | Oregon, Tokyo | Tokyo, Oregon -> 48_000
    | Oregon, Singapore | Singapore, Oregon -> 82_000
    | Ireland, Sydney | Sydney, Ireland -> 131_000
    | Ireland, Tokyo | Tokyo, Ireland -> 105_000
    | Ireland, Singapore | Singapore, Ireland -> 87_000
    | Sydney, Tokyo | Tokyo, Sydney -> 95_000 (* routed via us-west *)
    | Sydney, Singapore | Singapore, Sydney -> 46_000
    | Tokyo, Singapore | Singapore, Tokyo -> 34_000
    | (Oregon | Ireland | Sydney | Tokyo | Singapore), _ ->
        assert false (* equal regions are handled above *)

let paper_placement n =
  let ring = [| Oregon; Ireland; Sydney |] in
  Array.init n (fun i -> ring.(i mod 3))

let violates_triangle ~src ~via ~dst =
  one_way_us src via + one_way_us via dst < one_way_us src dst
