(** Append-only sample recorder (e.g. per-transaction commit latency).

    Cheap to record into during a simulation; summaries are computed on
    demand. *)

type t

val create : unit -> t

val record : t -> float -> unit

val count : t -> int

val is_empty : t -> bool

val to_array : t -> float array

(** Sorted (ascending) snapshot — take one and report any number of
    quantiles through {!Stats.percentile_sorted} without re-sorting. *)
val sorted : t -> float array

val mean : t -> float

val percentile : float -> t -> float

(** (mean, p50, p95, p99, max) from one sorted snapshot. All-zero when
    the recorder is empty. *)
val summary : t -> float * float * float * float * float

(** [clear t] discards everything recorded so far (e.g. warm-up). *)
val clear : t -> unit
