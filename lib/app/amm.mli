(** Constant-product automated market maker (x·y = k), the DeFi venue
    where transaction reordering turns into money.

    This is the measurement instrument for the paper's motivation
    (§I, §V-E): a sandwich attacker who can order its buy before and
    its sell after a victim's buy extracts value from the victim's
    price impact; a front-runner who sees a pending buy can ride the
    price up. Under Lyra the attacker never sees the payload before
    ordering is fixed, so the measured extraction collapses to zero.

    Commands are encoded in payload strings:
    ["swap <trader> x2y <amount>"] (sell asset X for Y) and
    ["swap <trader> y2x <amount>"]. Amounts are integer units. *)

type t

(** [create ~reserve_x ~reserve_y] opens the pool. *)
val create : reserve_x:int -> reserve_y:int -> t

type direction = X_to_y | Y_to_x

type swap = { trader : string; dir : direction; amount_in : int }

val parse : string -> swap option

val encode : swap -> string

(** [quote t dir amount_in] is the output the pool would give now
    (after the 0.3% fee), without executing. A quote of 0 means the
    swap would be rejected: non-positive input, dust whose output
    rounds to nothing, or reserves/amounts past the representable
    range (real AMMs revert in the same situations — Uniswap v2 at its
    uint112 balance bound). Quote arithmetic is exact for all inputs:
    intermediates are widened through 128-bit limbs when the native
    product would overflow. *)
val quote : t -> direction -> int -> int

(** [apply t swap] executes a swap and returns the amount paid out.
    [None] — the swap is rejected as a no-op (zero-output quote, see
    {!quote}): reserves, positions and {!swaps_applied} are untouched,
    matching revert semantics. *)
val apply : t -> swap -> int option

(** [apply_payload t s] parses and applies; [None] if not a swap or
    if the swap was rejected. *)
val apply_payload : t -> string -> int option

val reserve_x : t -> int

val reserve_y : t -> int

(** Mid price of X in Y, scaled by 1e6. Exact for large reserves
    (widened intermediates); saturates at [max_int] when the scaled
    ratio itself cannot be represented. *)
val price_x_micro : t -> int

(** Net position (received − spent) of a trader per asset, for
    computing attacker profit. *)
val position : t -> string -> int * int

val swaps_applied : t -> int
