(** Transaction payload obfuscation via (threshold, n) secret sharing —
    the paper's [vss-encrypt] / [vss-partial-decrypt] / [vss-decrypt]
    triple (§II-B), used by Lyra's commit-reveal scheme.

    [encrypt] draws a random scalar as symmetric key, encrypts the
    payload with a SHA-256 keystream, Shamir-shares the key over Z_Q and
    publishes per-share commitments. The cipher (public) travels with
    the consensus messages; share i (private) is handed to process i. A
    process reveals its share only once the transaction is committed
    (§V-C line 95); with 2f + 1 verified shares anybody reconstructs the
    key and decrypts.

    Two commitment schemes are provided (DESIGN.md §1):
    - {!Hashed} — hash commitments to each share, the scheme the paper's
      own prototype uses (§VI-A, citing Halevi–Micali [13]); share
      verification is one hash. Default for the large experiments.
    - {!Feldman} — full Feldman VSS over the safe-prime group; share
      verification checks polynomial consistency, so even the dealer
      cannot produce inconsistent shares. *)

type scheme = Hashed | Feldman

type proof = private
  | Hashed_proof of string array  (** H(i ‖ share_i) per process *)
  | Feldman_proof of Feldman.commitments

type cipher = {
  body : string;  (** keystream-encrypted payload *)
  checksum : string;  (** digest of the plaintext, to detect bad keys *)
  n : int;
  threshold : int;
  proof : proof;
}

type decryption_share = { holder : int; share : Feldman.Sharing.share }

(** [encrypt ?scheme rng ~n ~threshold payload] returns the public
    cipher and the private per-process decryption shares ([holder] =
    process index). Default scheme: {!Hashed}. *)
val encrypt :
  ?scheme:scheme ->
  Rng.t ->
  n:int ->
  threshold:int ->
  string ->
  cipher * decryption_share array

(** [partial_decrypt shares i] is process [i]'s reveal (the paper's
    [vss-partial-decrypt]). *)
val partial_decrypt : decryption_share array -> int -> decryption_share

(** [verify_share cipher ds] checks a revealed share against the
    cipher's commitments, rejecting Byzantine garbage. *)
val verify_share : cipher -> decryption_share -> bool

(** [decrypt cipher shares] reconstructs the key from at least
    [threshold] distinct verified shares and returns the payload, or
    [None] if shares are insufficient/invalid or the checksum fails. *)
val decrypt : cipher -> decryption_share list -> string option

(** Stable identifier of a cipher (digest of its public part), used as
    the transaction id before the payload is revealed. *)
val tag : cipher -> string
