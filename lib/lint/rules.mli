(** The `lyra_lint` rule catalog.

    D-rules protect simulator determinism (the bit-for-bit
    reproducibility DESIGN.md promises for Lyra-vs-Pompē comparisons);
    the D1xx family is interprocedural (computed on the project-wide
    call graph, see {!Callgraph} and {!Taint}); P-rules protect
    protocol-message totality; S-rules protect protocol safety and
    interface hygiene. See docs/LINT.md for the full write-up. *)

type id =
  | D001  (** unordered [Hashtbl] traversal in deterministic code *)
  | D002  (** wall clock / ambient entropy outside sanctioned modules *)
  | D003  (** polymorphic structural compare / hash *)
  | D101  (** deterministic-scope function reaches a nondeterministic source *)
  | D102  (** deterministic-scope function reaches toplevel mutable state *)
  | P001  (** wildcard arm in a protocol message/event dispatch *)
  | S001  (** [Obj.magic] / [Obj.repr] / [Obj.obj] *)
  | S002  (** lib/ module without a [.mli] *)
  | S003  (** [@warning "-..."] suppression in lib/ *)
  | S004  (** stale [lint.allow] entry or inline allow comment *)

(** Every rule, in catalog order. *)
val all : id list

val to_string : id -> string

val of_string : string -> id option

(** One-line description used in diagnostics. *)
val summary : id -> string

(** Why the pattern is banned; printed by [lyra_lint --rules help] and
    quoted in docs/LINT.md. *)
val rationale : id -> string
