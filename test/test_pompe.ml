(* The Pompē baseline: median sequencing, agreement, stable in-order
   execution, censorship hooks, timestamp withholding. *)

let make_cluster ?(seed = 31L) ?(censors = []) ?respond_ts_for
    ?(on_observe = fun _ _ -> ()) n =
  let engine = Sim.Engine.create ~seed () in
  let cfg =
    { (Pompe.Config.default ~n) with batch_size = 5; batch_timeout_us = 20_000 }
  in
  let latency = Sim.Latency.regional ~jitter:0.01 (Sim.Regions.paper_placement n) in
  let net =
    Sim.Network.create engine ~n ~latency
      ~cost:(fun ~dst:_ b -> Pompe.Types.msg_cost Sim.Costs.default ~n b)
      ~size:Pompe.Types.msg_size ()
  in
  let nodes =
    Array.init n (fun id ->
        Pompe.Node.create cfg net ~id
          ~on_observe:(on_observe id)
          ~censor:(fun iid ->
            List.mem id censors && iid.Lyra.Types.proposer = 0)
          ?respond_ts:
            (match respond_ts_for with
            | Some (byz_id, policy) when byz_id = id -> Some policy
            | _ -> None)
          ())
  in
  Array.iter Pompe.Node.start nodes;
  (engine, nodes)

let outputs_of node =
  List.map (fun (o : Pompe.Node.output) -> o.batch.Lyra.Types.iid) (Pompe.Node.output_log node)

let test_median_seq () =
  (* the sequencing median is the middle of the 2f+1 collected
     timestamps — verified through observable behaviour at n=4: seq of
     each output falls among the perceived times *)
  let engine, nodes = make_cluster 4 in
  for _ = 1 to 5 do
    ignore (Pompe.Node.submit nodes.(0) ~payload:(String.make 32 'z') : string)
  done;
  Sim.Engine.run engine ~until:10_000_000;
  let out = Pompe.Node.output_log nodes.(1) in
  Alcotest.(check bool) "committed" true (out <> []);
  List.iter
    (fun (o : Pompe.Node.output) ->
      let age = o.seq - o.batch.Lyra.Types.created_at in
      (* median of perceived times: within [0, max one-way + offsets] *)
      Alcotest.(check bool) "sane median" true (age >= -5_000 && age < 200_000))
    out

let test_agreement_across_nodes () =
  let engine, nodes = make_cluster 7 in
  for round = 0 to 4 do
    ignore
      (Sim.Engine.schedule engine ~delay:(round * 100_000) (fun () ->
           Array.iter
             (fun nd ->
               for _ = 1 to 3 do
                 ignore (Pompe.Node.submit nd ~payload:(String.make 32 'q') : string)
               done)
             nodes)
        : Sim.Engine.timer)
  done;
  Sim.Engine.run engine ~until:15_000_000;
  let base = outputs_of nodes.(0) in
  Alcotest.(check bool) "committed plenty" true (List.length base >= 20);
  Array.iter
    (fun nd ->
      let o = outputs_of nd in
      let l = min (List.length base) (List.length o) in
      Alcotest.(check bool) "prefix agreement" true
        (List.filteri (fun i _ -> i < l) base = List.filteri (fun i _ -> i < l) o))
    nodes

let test_outputs_in_seq_order () =
  let engine, nodes = make_cluster 4 in
  Array.iter
    (fun nd ->
      for _ = 1 to 6 do
        ignore (Pompe.Node.submit nd ~payload:(String.make 32 'o') : string)
      done)
    nodes;
  Sim.Engine.run engine ~until:12_000_000;
  let seqs = List.map (fun (o : Pompe.Node.output) -> o.seq) (Pompe.Node.output_log nodes.(2)) in
  Alcotest.(check (list int)) "ascending" (List.sort Int.compare seqs) seqs

let test_observation_hook_sees_cleartext () =
  let seen = ref false in
  let engine, nodes =
    make_cluster
      ~on_observe:(fun id batch ->
        if id = 1 then
          match Lyra.Types.observable_txs batch with
          | Some txs when Array.length txs > 0 -> seen := true
          | _ -> ())
      4
  in
  ignore (Pompe.Node.submit nodes.(0) ~payload:"sensitive" : string);
  Sim.Engine.run engine ~until:3_000_000;
  Alcotest.(check bool) "payload visible in flight" true !seen

let test_ts_withholding_tolerated () =
  (* One node never responds with timestamps: 2f+1 others suffice. *)
  let engine, nodes =
    make_cluster ~respond_ts_for:(1, fun _ ~honest:_ -> None) 4
  in
  for _ = 1 to 4 do
    ignore (Pompe.Node.submit nodes.(0) ~payload:(String.make 32 'w') : string)
  done;
  Sim.Engine.run engine ~until:12_000_000;
  Alcotest.(check bool) "still commits" true (Pompe.Node.output_log nodes.(0) <> [])

let test_sequenced_count () =
  let engine, nodes = make_cluster 4 in
  for _ = 1 to 5 do
    ignore (Pompe.Node.submit nodes.(3) ~payload:(String.make 32 's') : string)
  done;
  Sim.Engine.run engine ~until:10_000_000;
  Array.iter
    (fun nd -> Alcotest.(check int) "one sequenced batch" 1 (Pompe.Node.sequenced_count nd))
    nodes

let test_censor_does_not_break_safety () =
  let engine, nodes = make_cluster ~censors:[ 1; 2 ] 7 in
  Array.iter
    (fun nd ->
      for _ = 1 to 3 do
        ignore (Pompe.Node.submit nd ~payload:(String.make 32 'c') : string)
      done)
    nodes;
  Sim.Engine.run engine ~until:15_000_000;
  let base = outputs_of nodes.(0) in
  Alcotest.(check bool) "victim's batch eventually included" true
    (List.exists (fun (i : Lyra.Types.iid) -> i.proposer = 0) base);
  Array.iter
    (fun nd ->
      let o = outputs_of nd in
      let l = min (List.length base) (List.length o) in
      Alcotest.(check bool) "prefix agreement" true
        (List.filteri (fun i _ -> i < l) base = List.filteri (fun i _ -> i < l) o))
    nodes

let test_cmd_encoding () =
  let cmd = { Pompe.Types.c_iid = { proposer = 3; index = 9 }; c_seq = 5; c_proof_count = 3 } in
  Alcotest.(check string) "id" "3.9" (Pompe.Types.cmd_id cmd);
  Alcotest.(check int) "size grows with proofs" (64 + 288) (Pompe.Types.cmd_size cmd)

let suite =
  [
    Alcotest.test_case "median sequencing" `Quick test_median_seq;
    Alcotest.test_case "agreement" `Slow test_agreement_across_nodes;
    Alcotest.test_case "outputs in seq order" `Quick test_outputs_in_seq_order;
    Alcotest.test_case "cleartext observable" `Quick test_observation_hook_sees_cleartext;
    Alcotest.test_case "ts withholding tolerated" `Quick test_ts_withholding_tolerated;
    Alcotest.test_case "sequenced count" `Quick test_sequenced_count;
    Alcotest.test_case "censorship safety" `Slow test_censor_does_not_break_safety;
    Alcotest.test_case "cmd encoding" `Quick test_cmd_encoding;
  ]
