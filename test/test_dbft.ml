(* The DBFT substrate: quorum arithmetic, binary-value broadcast, and
   the binary consensus protocol itself under faults and random
   schedules. *)

let test_quorums () =
  List.iter
    (fun (n, f) -> Alcotest.(check int) (Printf.sprintf "f(%d)" n) f (Dbft.Quorums.max_faulty n))
    [ (1, 0); (3, 0); (4, 1); (6, 1); (7, 2); (10, 3); (16, 5); (31, 10); (100, 33) ];
  Alcotest.(check int) "quorum 4" 3 (Dbft.Quorums.quorum 4);
  Alcotest.(check int) "quorum 100" 67 (Dbft.Quorums.quorum 100);
  Alcotest.(check int) "supermajority 100" 67 (Dbft.Quorums.supermajority 100);
  Alcotest.(check int) "supermajority 10" 7 (Dbft.Quorums.supermajority 10)

let test_aux_union () =
  let in_bin b = b = 1 in
  (* enough senders, all inside bin_values *)
  Alcotest.(check (option (list int))) "singleton" (Some [ 1 ])
    (Dbft.Quorums.aux_union ~need:3 ~in_bin [ [ 1 ]; [ 1 ]; [ 1 ] ]);
  (* AUX sets containing values outside bin_values are ignored *)
  Alcotest.(check (option (list int))) "filtered" None
    (Dbft.Quorums.aux_union ~need:3 ~in_bin [ [ 1 ]; [ 0 ]; [ 0; 1 ] ]);
  let both b = b = 0 || b = 1 in
  Alcotest.(check (option (list int))) "union" (Some [ 0; 1 ])
    (Dbft.Quorums.aux_union ~need:3 ~in_bin:both [ [ 1 ]; [ 0 ]; [ 0; 1 ] ]);
  Alcotest.(check (option (list int))) "too few" None
    (Dbft.Quorums.aux_union ~need:3 ~in_bin [ [ 1 ]; [ 1 ] ])

let test_bv_basics () =
  let echoes = ref [] and delivered = ref [] in
  let bv =
    Dbft.Bv_broadcast.create ~n:4
      ~echo:(fun b -> echoes := b :: !echoes)
      ~deliver:(fun b -> delivered := b :: !delivered)
      ()
  in
  Dbft.Bv_broadcast.input bv 1;
  Alcotest.(check (list int)) "echoed own" [ 1 ] !echoes;
  (* own echo comes back plus two peers: 3 = 2f+1 -> delivery *)
  Dbft.Bv_broadcast.on_est bv ~src:0 1;
  Dbft.Bv_broadcast.on_est bv ~src:1 1;
  Alcotest.(check (list int)) "not yet" [] !delivered;
  Dbft.Bv_broadcast.on_est bv ~src:2 1;
  Alcotest.(check (list int)) "delivered 1" [ 1 ] !delivered;
  Alcotest.(check bool) "flag" true (Dbft.Bv_broadcast.delivered bv 1);
  (* duplicates ignored *)
  Dbft.Bv_broadcast.on_est bv ~src:2 1;
  Alcotest.(check (list int)) "no duplicate" [ 1 ] !delivered

let test_bv_relay_at_f_plus_1 () =
  let echoes = ref [] in
  let bv =
    Dbft.Bv_broadcast.create ~n:4 ~echo:(fun b -> echoes := b :: !echoes)
      ~deliver:(fun _ -> ())
      ()
  in
  (* f+1 = 2 ESTs for 0 trigger the relay even without own input *)
  Dbft.Bv_broadcast.on_est bv ~src:1 0;
  Alcotest.(check (list int)) "quiet" [] !echoes;
  Dbft.Bv_broadcast.on_est bv ~src:2 0;
  Alcotest.(check (list int)) "relayed" [ 0 ] !echoes

let test_bv_rejects_junk () =
  let bv = Dbft.Bv_broadcast.create ~n:4 ~echo:ignore ~deliver:ignore () in
  Alcotest.(check bool) "bad value" true
    (try Dbft.Bv_broadcast.on_est bv ~src:0 2 |> fun () -> false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad src" true
    (try Dbft.Bv_broadcast.on_est bv ~src:9 1 |> fun () -> false
     with Invalid_argument _ -> true)

(* Full-protocol runs over the simulated network. *)
let run_consensus ?(crash = []) ~n ~inputs ~seed () =
  let engine = Sim.Engine.create ~seed () in
  let net =
    Sim.Network.create engine ~n
      ~latency:(Sim.Latency.uniform ~lo:5_000 ~hi:25_000)
      ~cost:(fun ~dst:_ _ -> 5)
      ~size:Dbft.Binary_consensus.msg_size ()
  in
  let decisions = Array.make n None in
  let replicas =
    Array.init n (fun id ->
        Dbft.Binary_consensus.create net ~id ~delta_us:30_000
          ~on_decide:(fun ~round v -> decisions.(id) <- Some (round, v))
          ())
  in
  List.iter (fun i -> Sim.Network.crash net i) crash;
  Array.iteri (fun i r -> Dbft.Binary_consensus.propose r inputs.(i)) replicas;
  Sim.Engine.run engine ~until:10_000_000;
  decisions

let test_unanimous_one_fast () =
  let d = run_consensus ~n:4 ~inputs:[| 1; 1; 1; 1 |] ~seed:1L () in
  Array.iter
    (function
      | Some (round, v) ->
          Alcotest.(check int) "decides 1" 1 v;
          Alcotest.(check int) "round 1" 1 round
      | None -> Alcotest.fail "no decision")
    d

let test_unanimous_zero () =
  let d = run_consensus ~n:4 ~inputs:[| 0; 0; 0; 0 |] ~seed:2L () in
  Array.iter
    (function
      | Some (_, v) -> Alcotest.(check int) "decides 0" 0 v
      | None -> Alcotest.fail "no decision")
    d

let check_agreement_validity d inputs =
  let vals = Array.to_list d |> List.filter_map (Option.map snd) in
  (match vals with
  | [] -> Alcotest.fail "nobody decided"
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest;
      (* validity: the decision was someone's input *)
      Alcotest.(check bool) "validity" true (Array.exists (Int.equal v) inputs));
  ()

let test_mixed_inputs_agree () =
  for seed = 1 to 20 do
    let inputs = [| 1; 0; 1; 0; 1; 0; 0 |] in
    let d = run_consensus ~n:7 ~inputs ~seed:(Int64.of_int seed) () in
    Alcotest.(check int) "all decide" 7
      (List.length (Array.to_list d |> List.filter_map (fun x -> x)));
    check_agreement_validity d inputs
  done

let test_with_crashes () =
  (* f = 2 crashed replicas out of 7: the rest still terminate. *)
  let inputs = [| 1; 1; 0; 1; 0; 1; 1 |] in
  let d = run_consensus ~crash:[ 5; 6 ] ~n:7 ~inputs ~seed:9L () in
  let alive = Array.sub d 0 5 in
  Array.iter
    (fun x -> Alcotest.(check bool) "decided" true (x <> None))
    alive;
  check_agreement_validity alive inputs

let prop_agreement_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"dbft agreement over random inputs/seeds" ~count:25
       QCheck.(pair (int_bound 10_000) (int_bound 127))
       (fun (seed, bits) ->
         let n = 4 + (seed mod 4) in
         let inputs = Array.init n (fun i -> (bits lsr i) land 1) in
         let d = run_consensus ~n ~inputs ~seed:(Int64.of_int (seed + 1)) () in
         let vals = Array.to_list d |> List.filter_map (Option.map snd) in
         List.length vals = n
         && (match vals with
            | v :: rest -> List.for_all (Int.equal v) rest
            | [] -> false)))

let suite =
  [
    Alcotest.test_case "quorum arithmetic" `Quick test_quorums;
    Alcotest.test_case "aux union" `Quick test_aux_union;
    Alcotest.test_case "bv basics" `Quick test_bv_basics;
    Alcotest.test_case "bv relay" `Quick test_bv_relay_at_f_plus_1;
    Alcotest.test_case "bv rejects junk" `Quick test_bv_rejects_junk;
    Alcotest.test_case "unanimous 1 fast" `Quick test_unanimous_one_fast;
    Alcotest.test_case "unanimous 0" `Quick test_unanimous_zero;
    Alcotest.test_case "mixed inputs agree" `Quick test_mixed_inputs_agree;
    Alcotest.test_case "crash tolerance" `Quick test_with_crashes;
    prop_agreement_random;
  ]
