type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let before a b = a.time < b.time || (Int.equal a.time b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && before h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.len && before h.data.(r) h.data.(!smallest) then smallest := r;
  if not (Int.equal !smallest i) then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time payload =
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  if Int.equal h.len (Array.length h.data) then begin
    (* Grow, filling fresh slots with the new entry as a placeholder. *)
    let new_cap = max 64 (2 * h.len) in
    let data = Array.make new_cap entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.len = 0 then None else Some h.data.(0).time

let peek h =
  if h.len = 0 then None else Some (h.data.(0).time, h.data.(0).payload)

let size h = h.len

let is_empty h = h.len = 0
