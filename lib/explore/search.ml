type verdict = { case : Case.t; findings : Harness.Oracle.finding list }

type outcome =
  | Clean of int
  | Violating of {
      first : verdict;
      minimal : verdict;
      shrink_attempts : int;
      runs : int;
    }

(* ------------------------------------------------------------------ *)
(* Case generation. All randomness is drawn from one RNG seeded by the *)
(* sweep caller, *outside* the runs themselves — each generated case   *)
(* is pure data and replays identically.                               *)
(* ------------------------------------------------------------------ *)

let warmup_of_protocol protocol =
  if String.equal protocol "lyra" then 1_500_000 else 500_000

(* Pompē's ordering + consensus pipeline needs multi-second runway
   before anything commits (cf. test_protocol's golden durations). *)
let duration_for protocol =
  if String.equal protocol "pompe" then 8_000_000 else 1_500_000

let gen_endpoint rng ~n =
  if Int.equal (Crypto.Rng.int rng 2) 0 then None
  else Some (Crypto.Rng.int rng n)

(* Ops compose additively when their filters overlap, so the generator
   works from a per-case delay budget of 500–800 ms: deep enough to
   outrun Lyra's 480 ms acceptance window (the regime where a broken
   guard shows), yet — even with every op stacked on one link — safely
   under the monitor's 1 s stall watchdog, so an armed liveness oracle
   never fires on a schedule-only case. *)
let gen_op rng ~n ~horizon ~budget =
  match Crypto.Rng.int rng 3 with
  | 0 | 1 ->
      (* Draw from the upper half of what remains: single-op cases
         land 250–800 ms, enough to matter. *)
      let extra_us =
        max 1_000 (!budget - Crypto.Rng.int rng (max 1 (!budget / 2)))
      in
      budget := max 0 (!budget - extra_us);
      if Int.equal (Crypto.Rng.int rng 2) 0 then
        Sim.Perturb.Delay_nth { nth = Crypto.Rng.int rng 5_000; extra_us }
      else
        let from_us = Crypto.Rng.int rng horizon in
        Sim.Perturb.Delay_window
          {
            from_us;
            until_us = from_us + 10_000 + Crypto.Rng.int rng 200_000;
            src = gen_endpoint rng ~n;
            dst = gen_endpoint rng ~n;
            extra_us;
          }
  | _ ->
      (* A reversal costs 2 × (until - now) per matched message; charge
         the worst case against the budget. *)
      let len = 10_000 + Crypto.Rng.int rng (max 1 (min 60_000 (!budget / 4)))
      in
      budget := max 0 (!budget - (2 * len));
      let from_us = Crypto.Rng.int rng horizon in
      Sim.Perturb.Reverse_window
        {
          from_us;
          until_us = from_us + len;
          src = gen_endpoint rng ~n;
          dst = gen_endpoint rng ~n;
        }

let gen_perturb rng ~n ~horizon =
  let k = 1 + Crypto.Rng.int rng 3 in
  let budget = ref (500_000 + Crypto.Rng.int rng 300_000) in
  List.init k (fun _ -> gen_op rng ~n ~horizon ~budget)

(* Mild mutations only: one fault at a time, always healing/recovering,
   at most ⌊(n-1)/3⌋-sized damage — the regime where every safety
   oracle must keep holding. Skews are deliberately absent (they widen
   Lyra's admissible seq windows in ways the oracle bounds don't
   model). *)
let gen_faults rng ~n ~horizon =
  match Crypto.Rng.int rng 4 with
  | 0 ->
      let from_us = Crypto.Rng.int rng horizon in
      Sim.Faults.(
        none
        |> loss ~from_us
             ~until_us:(from_us + 50_000 + Crypto.Rng.int rng 250_000)
             ~drop_p:(0.01 +. (0.14 *. Crypto.Rng.float rng))
             ~dup_p:(0.1 *. Crypto.Rng.float rng))
  | 1 ->
      let from_us = Crypto.Rng.int rng horizon in
      Sim.Faults.(
        none
        |> partition ~from_us
             ~heal_us:(from_us + 50_000 + Crypto.Rng.int rng 250_000)
             ~island:[ Crypto.Rng.int rng n ])
  | 2 ->
      let at_us = Crypto.Rng.int rng horizon in
      Sim.Faults.(
        none
        |> crash
             ~node:(Crypto.Rng.int rng n)
             ~at_us
             ~recover_us:(at_us + 100_000 + Crypto.Rng.int rng 300_000))
  | _ -> Sim.Faults.none

let gen_case rng ~protocol ~knob ~n ~duration_us ~clients ~with_faults =
  let horizon = warmup_of_protocol protocol + duration_us in
  let seed = Int64.of_int (1 + Crypto.Rng.int rng 1_000_000) in
  let perturb = gen_perturb rng ~n ~horizon in
  let faults =
    if with_faults then gen_faults rng ~n ~horizon else Sim.Faults.none
  in
  { (Case.make ~knob ~n ~seed ~duration_us ~clients protocol) with
    faults;
    perturb;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy removal to a fixpoint. A candidate is kept only   *)
(* if it still triggers at least one oracle that the original          *)
(* violation triggered — shrinking must not wander to a different bug. *)
(* ------------------------------------------------------------------ *)

let same_bug ~reference findings =
  List.exists
    (fun (f : Harness.Oracle.finding) ->
      List.exists
        (fun (r : Harness.Oracle.finding) -> String.equal f.oracle r.oracle)
        reference)
    findings

let remove_nth i l = List.filteri (fun j _ -> not (Int.equal i j)) l

let halve_op (op : Sim.Perturb.op) =
  match op with
  | Sim.Perturb.Delay_nth d when d.extra_us >= 2_000 ->
      Some (Sim.Perturb.Delay_nth { d with extra_us = d.extra_us / 2 })
  | Sim.Perturb.Delay_window w when w.extra_us >= 2_000 ->
      Some (Sim.Perturb.Delay_window { w with extra_us = w.extra_us / 2 })
  | Sim.Perturb.Delay_nth _ | Sim.Perturb.Delay_window _
  | Sim.Perturb.Reverse_window _ ->
      None

(* Candidate simplifications of a case, most aggressive first: drop a
   whole perturbation op or fault entry, neutralize the knob, then
   halve surviving delays. *)
let variants (c : Case.t) =
  let drop_ops =
    List.mapi (fun i _ -> { c with perturb = remove_nth i c.perturb }) c.perturb
  in
  let f = c.faults in
  let drop_faults =
    List.mapi
      (fun i _ ->
        { c with faults = { f with losses = remove_nth i f.losses } })
      f.losses
    @ List.mapi
        (fun i _ ->
          { c with faults = { f with partitions = remove_nth i f.partitions } })
        f.partitions
    @ List.mapi
        (fun i _ ->
          { c with faults = { f with crashes = remove_nth i f.crashes } })
        f.crashes
    @ List.mapi
        (fun i _ ->
          { c with faults = { f with skews_us = remove_nth i f.skews_us } })
        f.skews_us
  in
  let neutral_knob =
    if String.equal c.knob "default" then [] else [ { c with knob = "default" } ]
  in
  let fewer_clients = if c.clients > 1 then [ { c with clients = 1 } ] else [] in
  let halved =
    List.concat
      (List.mapi
         (fun i op ->
           match halve_op op with
           | None -> []
           | Some op' ->
               [
                 {
                   c with
                   perturb = List.mapi (fun j o -> if Int.equal i j then op' else o) c.perturb;
                 };
               ])
         c.perturb)
  in
  drop_ops @ drop_faults @ neutral_knob @ fewer_clients @ halved

let shrink ?(budget = 60) ?(log = fun _ -> ()) case reference =
  let attempts = ref 0 in
  let still_violates candidate =
    incr attempts;
    let findings = Case.check candidate (Case.run candidate) in
    if same_bug ~reference findings then Some findings else None
  in
  let rec fixpoint current current_findings =
    if !attempts >= budget then (current, current_findings)
    else
      let next =
        List.find_map
          (fun candidate ->
            if !attempts >= budget then None
            else
              Option.map
                (fun findings -> (candidate, findings))
                (still_violates candidate))
          (variants current)
      in
      match next with
      | None -> (current, current_findings)
      | Some (candidate, findings) ->
          log (Printf.sprintf "shrunk to: %s" (Case.label candidate));
          fixpoint candidate findings
  in
  let minimal, findings = fixpoint case reference in
  ({ case = minimal; findings }, !attempts)

(* ------------------------------------------------------------------ *)
(* The sweep.                                                         *)
(* ------------------------------------------------------------------ *)

let default_pairs () =
  List.concat_map
    (fun p -> List.map (fun k -> (p, k)) (Knobs.safe p))
    Knobs.protocols

let sweep ?(seed = 1L) ?(n = 4) ?duration_us ?(clients = 2) ?(runs = 30)
    ?(with_faults = true) ?pairs ?shrink_budget ?(log = fun _ -> ()) () =
  let pairs = match pairs with Some p -> p | None -> default_pairs () in
  if Int.equal (List.length pairs) 0 then invalid_arg "Search.sweep: no cases";
  let rng = Crypto.Rng.create seed in
  let baseline = List.length pairs in
  let rec loop i =
    if i >= runs then Clean runs
    else begin
      let protocol, knob = List.nth pairs (i mod baseline) in
      let duration_us =
        match duration_us with Some d -> d | None -> duration_for protocol
      in
      (* The first pass over the catalog runs clean schedules — the
         cheap guarantee that baselines are green before perturbing. *)
      let case =
        if i < baseline then
          Case.make ~knob ~n ~duration_us ~clients protocol
        else
          gen_case rng ~protocol ~knob ~n ~duration_us ~clients ~with_faults
      in
      log (Printf.sprintf "run %d/%d: %s" (i + 1) runs (Case.label case));
      let findings = Case.check case (Case.run case) in
      match findings with
      | [] -> loop (i + 1)
      | _ :: _ ->
          List.iter
            (fun f ->
              log (Format.asprintf "  VIOLATION %a" Harness.Oracle.pp_finding f))
            findings;
          let minimal, shrink_attempts =
            shrink ?budget:shrink_budget ~log case findings
          in
          Violating
            { first = { case; findings }; minimal; shrink_attempts; runs = i + 1 }
    end
  in
  loop 0
